//! Uplink-capacity modelling.
//!
//! Streaming with gossip is upload-bound: a node's contribution is the
//! bandwidth it devotes to serving chunks. We model each node's uplink as a
//! FIFO transmission queue with a fixed bit rate; a message occupies the
//! uplink for `size * 8 / rate` seconds before it starts propagating. Nodes
//! with poor capacity therefore deliver late, drop behind the stream and —
//! exactly as observed in the paper's PlanetLab runs — end up blamed even
//! though they are honest.

use lifting_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static capability of a node's network attachment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCapability {
    /// Uplink rate in bits per second. `None` models an unconstrained uplink.
    pub upload_bps: Option<u64>,
    /// Additional, node-specific loss probability applied on top of the
    /// network-wide loss model (models flaky access links).
    pub extra_loss: f64,
    /// Multiplier applied to the sampled propagation latency of messages this
    /// node sends or receives (access technologies differ: fiber sits close
    /// to the backbone, mobile links add tens of milliseconds). `1.0` — the
    /// default — is applied nowhere, so homogeneous deployments stay
    /// bit-identical to the pre-class network.
    pub latency_scale: f64,
}

impl NodeCapability {
    /// An unconstrained, loss-free attachment (useful for unit tests and for
    /// the pure Monte-Carlo experiments of Figures 10–13).
    pub fn unconstrained() -> Self {
        NodeCapability {
            upload_bps: None,
            extra_loss: 0.0,
            latency_scale: 1.0,
        }
    }

    /// A well-provisioned broadband node.
    pub fn broadband(upload_bps: u64) -> Self {
        NodeCapability {
            upload_bps: Some(upload_bps),
            extra_loss: 0.0,
            latency_scale: 1.0,
        }
    }

    /// A poorly connected node: low uplink and extra loss. These are the
    /// honest nodes that the paper reports as the bulk of its false positives.
    pub fn poor(upload_bps: u64, extra_loss: f64) -> Self {
        NodeCapability {
            upload_bps: Some(upload_bps),
            extra_loss,
            latency_scale: 1.0,
        }
    }

    /// Scales this node's propagation latency (builder style) — the knob the
    /// per-node capability *classes* use to model access technologies.
    pub fn with_latency_scale(mut self, scale: f64) -> Self {
        self.latency_scale = scale;
        self
    }
}

impl Default for NodeCapability {
    fn default() -> Self {
        NodeCapability::unconstrained()
    }
}

/// Dynamic state of a node's uplink: when the transmitter becomes free.
#[derive(Debug, Clone, Copy, Default)]
pub struct UplinkState {
    next_free: SimTime,
}

impl UplinkState {
    /// Creates an idle uplink.
    pub fn new() -> Self {
        UplinkState::default()
    }

    /// Time at which the uplink finishes everything queued so far.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Queues a transmission of `size_bytes` starting no earlier than `now`
    /// and returns the instant at which the last bit leaves the node.
    ///
    /// With an unconstrained uplink the message leaves immediately.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        size_bytes: u64,
        capability: &NodeCapability,
    ) -> SimTime {
        let start = self.next_free.max(now);
        let tx_time = match capability.upload_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                let bits = size_bytes.saturating_mul(8);
                SimDuration::from_secs_f64(bits as f64 / bps as f64)
            }
        };
        let done = start + tx_time;
        self.next_free = done;
        done
    }

    /// Current backlog relative to `now` (how long a new message would wait
    /// before its first bit is sent).
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free.saturating_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_uplink_sends_instantly() {
        let mut up = UplinkState::new();
        let cap = NodeCapability::unconstrained();
        let t = up.enqueue(SimTime::from_millis(10), 1_000_000, &cap);
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(up.backlog(SimTime::from_millis(10)), SimDuration::ZERO);
    }

    #[test]
    fn constrained_uplink_serializes_messages() {
        let mut up = UplinkState::new();
        // 1 Mbit/s: a 1250-byte message takes 10 ms.
        let cap = NodeCapability::broadband(1_000_000);
        let t1 = up.enqueue(SimTime::ZERO, 1_250, &cap);
        let t2 = up.enqueue(SimTime::ZERO, 1_250, &cap);
        assert_eq!(t1, SimTime::from_millis(10));
        assert_eq!(t2, SimTime::from_millis(20));
        assert_eq!(up.backlog(SimTime::ZERO), SimDuration::from_millis(20));
    }

    #[test]
    fn idle_time_is_not_accumulated() {
        let mut up = UplinkState::new();
        let cap = NodeCapability::broadband(1_000_000);
        let t1 = up.enqueue(SimTime::ZERO, 1_250, &cap);
        assert_eq!(t1, SimTime::from_millis(10));
        // Uplink idles until t=100ms, then a new message starts at 100ms.
        let t2 = up.enqueue(SimTime::from_millis(100), 1_250, &cap);
        assert_eq!(t2, SimTime::from_millis(110));
    }

    #[test]
    fn poor_capability_reports_extra_loss() {
        let cap = NodeCapability::poor(256_000, 0.05);
        assert_eq!(cap.upload_bps, Some(256_000));
        assert!((cap.extra_loss - 0.05).abs() < 1e-12);
    }
}
