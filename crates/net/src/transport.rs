//! Transport kinds.

use serde::{Deserialize, Serialize};

/// The transport used for a message.
///
/// The paper sends all dissemination and direct-verification traffic over UDP
/// (lossy, cheap) and runs a-posteriori audits over TCP (reliable, connection
/// overhead amortized over a large transfer) — see Sections 3 and 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Unreliable datagram: subject to the configured loss model.
    Udp,
    /// Reliable stream: never lost, slightly larger per-message overhead.
    Tcp,
}

impl Transport {
    /// True if messages on this transport can be lost.
    pub fn is_lossy(self) -> bool {
        matches!(self, Transport::Udp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_is_lossy_tcp_is_not() {
        assert!(Transport::Udp.is_lossy());
        assert!(!Transport::Tcp.is_lossy());
    }
}
