//! Transport kinds and the per-category transport policy.

use serde::{Deserialize, Serialize};

use crate::traffic::TrafficCategory;

/// The transport used for a message.
///
/// The paper sends all dissemination and direct-verification traffic over UDP
/// (lossy, cheap) and runs a-posteriori audits over TCP (reliable, connection
/// overhead amortized over a large transfer) — see Sections 3 and 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Unreliable datagram: subject to the configured loss model.
    Udp,
    /// Reliable stream: never lost, slightly larger per-message overhead.
    Tcp,
}

impl Transport {
    /// True if messages on this transport can be lost.
    pub fn is_lossy(self) -> bool {
        matches!(self, Transport::Udp)
    }
}

/// Which transport each [`TrafficCategory`] travels over.
///
/// The paper's deployment (Section 5.3) is the default: audits are the only
/// traffic that runs over TCP, everything else is UDP. Making the mapping part
/// of [`crate::NetworkConfig`] turns "audits-over-TCP vs gossip-over-UDP" into
/// configuration instead of a hardcoded decision at every send call site, so
/// scenarios can explore e.g. reliable blame delivery without touching the
/// runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportPolicy {
    /// Transport for chunk payloads (serve messages).
    pub stream_data: Transport,
    /// Transport for propose/request control messages.
    pub gossip_control: Transport,
    /// Transport for ack/confirm/confirm-response cross-checking messages.
    pub verification: Transport,
    /// Transport for blame messages sent to reputation managers.
    pub blame: Transport,
    /// Transport for a-posteriori audit transfers (history upload, polls).
    pub audit: Transport,
    /// Transport for peer-sampling / membership maintenance traffic.
    pub membership: Transport,
}

impl Default for TransportPolicy {
    fn default() -> Self {
        TransportPolicy::paper()
    }
}

impl TransportPolicy {
    /// The paper's mapping: audits over TCP, everything else over UDP.
    pub fn paper() -> Self {
        TransportPolicy {
            stream_data: Transport::Udp,
            gossip_control: Transport::Udp,
            verification: Transport::Udp,
            blame: Transport::Udp,
            audit: Transport::Tcp,
            membership: Transport::Udp,
        }
    }

    /// Everything over UDP (including audits) — a strictly cheaper but lossy
    /// deployment.
    pub fn all_udp() -> Self {
        TransportPolicy {
            audit: Transport::Udp,
            ..TransportPolicy::paper()
        }
    }

    /// Everything over TCP — loss-free control plane for ablations.
    pub fn all_tcp() -> Self {
        TransportPolicy {
            stream_data: Transport::Tcp,
            gossip_control: Transport::Tcp,
            verification: Transport::Tcp,
            blame: Transport::Tcp,
            audit: Transport::Tcp,
            membership: Transport::Tcp,
        }
    }

    /// The transport messages of `category` travel over.
    pub fn transport_for(&self, category: TrafficCategory) -> Transport {
        match category {
            TrafficCategory::StreamData => self.stream_data,
            TrafficCategory::GossipControl => self.gossip_control,
            TrafficCategory::Verification => self.verification,
            TrafficCategory::Blame => self.blame,
            TrafficCategory::Audit => self.audit,
            TrafficCategory::Membership => self.membership,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_is_lossy_tcp_is_not() {
        assert!(Transport::Udp.is_lossy());
        assert!(!Transport::Tcp.is_lossy());
    }

    #[test]
    fn paper_policy_sends_only_audits_over_tcp() {
        let policy = TransportPolicy::paper();
        for category in TrafficCategory::ALL {
            let expected = if category == TrafficCategory::Audit {
                Transport::Tcp
            } else {
                Transport::Udp
            };
            assert_eq!(policy.transport_for(category), expected, "{category:?}");
        }
    }

    #[test]
    fn uniform_policies_cover_every_category() {
        for category in TrafficCategory::ALL {
            assert_eq!(
                TransportPolicy::all_udp().transport_for(category),
                Transport::Udp
            );
            assert_eq!(
                TransportPolicy::all_tcp().transport_for(category),
                Transport::Tcp
            );
        }
    }
}
