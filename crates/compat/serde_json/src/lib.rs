//! Offline substitute for `serde_json`.
//!
//! Provides [`Value`] (re-exported from the vendored `serde`), the [`json!`]
//! macro, [`to_value`], [`to_string`] and [`to_string_pretty`]. Nested object
//! or array literals inside `json!` must themselves be written as `json!(...)`
//! calls (the vendored macro does not recurse into bare `{...}` literals).

pub use serde::Value;

/// Error type of the vendored serializers. Serialization into a string never
/// fails here, so this is only a placeholder matching serde_json's signatures.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serialization error")
    }
}

impl std::error::Error for Error {}

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep integral floats readable and round-trippable.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from an object/array literal or any serializable
/// expression. Values inside a literal are arbitrary expressions (including
/// nested `json!(...)` calls); bare nested `{...}` literals are not supported.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = json!({
            "a": 1u64,
            "b": [1.5f64, 2.0f64],
            "c": json!({"nested": true}),
            "s": "x\"y",
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"a":1,"b":[1.5,2.0],"c":{"nested":true},"s":"x\"y"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
