//! Offline substitute for `rand`.
//!
//! Implements the subset of the `rand` 0.8 API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, `rngs::SmallRng` (backed by
//! xoshiro256++), `gen`/`gen_range`/`gen_bool`, and `seq::SliceRandom::shuffle`.
//! The streams differ from upstream `rand`, but every consumer in this
//! workspace only relies on determinism for a fixed seed, which this crate
//! guarantees.

pub mod rngs {
    pub use crate::small::SmallRng;
}
pub mod seq;
mod small;

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributed type (uniform over the whole
    /// domain for integers, uniform in `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A precomputed Bernoulli(p) draw, bit-identical to [`Rng::gen_bool`]`(p)`
/// but with the probability folded into an integer threshold once instead of
/// a float multiply-compare per draw (the Monte-Carlo sweeps draw hundreds of
/// millions of these with loop-invariant probabilities).
///
/// Equivalence: `gen_bool(p)` tests `k · 2⁻⁵³ < p` with `k = bits >> 11`.
/// Scaling by 2⁵³ is exact in `f64` (pure exponent shift), so the test equals
/// `k < p · 2⁵³` over the reals, and for integer `k` that is `k < ceil(p·2⁵³)`
/// (when `p·2⁵³` is an integer, `ceil` is the identity and the strict
/// comparison matches directly). Verified against `gen_bool` in the tests.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    threshold: u64,
}

impl Bernoulli {
    /// Precomputes the threshold for probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p = {p} not in [0, 1]");
        Bernoulli {
            threshold: (p * (1u64 << 53) as f64).ceil() as u64,
        }
    }

    /// Draws once: returns `true` with probability `p`, consuming exactly one
    /// `next_u64` like `gen_bool` does.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u64() >> 11) < self.threshold
    }
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, span)` by rejection (Lemire-style threshold on
/// the low word is overkill for the small spans used here).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: u64 = rng.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_matches_gen_bool_bit_for_bit() {
        for (i, p) in [0.0, 1e-9, 0.04, 0.143, 0.5, 0.93, 0.999_999, 1.0]
            .into_iter()
            .enumerate()
        {
            let b = Bernoulli::new(p);
            let mut r1 = SmallRng::seed_from_u64(100 + i as u64);
            let mut r2 = SmallRng::seed_from_u64(100 + i as u64);
            for _ in 0..50_000 {
                assert_eq!(b.sample(&mut r1), r2.gen_bool(p), "p = {p}");
            }
            // Both consumed the same number of words.
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
