//! Offline substitute for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`
//! and the `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock harness: each benchmark is warmed up briefly, then timed over a
//! fixed measurement budget, and the mean/min per-iteration times are printed.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batches are sized in `iter_batched`; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver handed to bench functions.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            warm_up: Duration::from_millis(50),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement: self.measurement,
            warm_up: self.warm_up,
            max_samples: self.sample_size.max(1),
            result: None,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    min: Duration,
    iters: u64,
}

/// Times one benchmark body.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    max_samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Batch iterations so each sample is long enough to time reliably.
        let target_sample =
            (self.measurement / self.max_samples.max(1) as u32).max(Duration::from_micros(50));
        let batch =
            (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.max_samples);
        let mut total_iters: u64 = 0;
        let run_start = Instant::now();
        while samples.len() < self.max_samples && run_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed() / batch as u32);
            total_iters += batch;
        }
        let min = samples.iter().copied().min().unwrap_or_default();
        let sum: Duration = samples.iter().sum();
        let mean = sum / samples.len().max(1) as u32;
        self.result = Some(Measurement {
            mean,
            min,
            iters: total_iters,
        });
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.max_samples);
        let mut total_iters: u64 = 0;
        let run_start = Instant::now();
        while samples.len() < self.max_samples && run_start.elapsed() < self.measurement {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed());
            total_iters += 1;
        }
        let min = samples.iter().copied().min().unwrap_or_default();
        let sum: Duration = samples.iter().sum();
        let mean = sum / samples.len().max(1) as u32;
        self.result = Some(Measurement {
            mean,
            min,
            iters: total_iters,
        });
    }

    fn report(&self, name: &str) {
        match self.result {
            Some(m) => println!(
                "bench {name:<48} mean {:>12} min {:>12} ({} iters)",
                format_duration(m.mean),
                format_duration(m.min),
                m.iters
            ),
            None => println!("bench {name:<48} (no measurement)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
