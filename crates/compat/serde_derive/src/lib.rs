//! Offline substitute for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the two derive macros the workspace uses, implemented directly on top of
//! `proc_macro` (no `syn`/`quote`). `#[derive(Serialize)]` generates an
//! implementation of the vendored `serde::Serialize` trait (which renders a
//! `serde::Value` tree); `#[derive(Deserialize)]` generates a marker
//! implementation. Container attributes (`#[serde(...)]`) are not supported —
//! the workspace does not use any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), serde::Serialize::to_json_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Data::TupleStruct(arity) => match arity {
            0 => "serde::Value::Null".to_string(),
            1 => "serde::Serialize::to_json_value(&self.0)".to_string(),
            n => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", elems.join(", "))
            }
        },
        Data::UnitStruct => "serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let name = &item.name;
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => serde::Value::String(String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Serialize::to_json_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_json_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl serde::Serialize for {} {{\n    fn to_json_value(&self) -> serde::Value {{\n        {}\n    }}\n}}",
        item.name, body
    );
    out.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// A tiny parser over `proc_macro::TokenStream`, just enough for the shapes the
// workspace derives on: non-generic structs and enums without serde attributes.
// ---------------------------------------------------------------------------

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    data: Data,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline substitute): generic types are not supported");
    }
    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => Data::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, data }
}

/// Advances past any leading attributes (including doc comments) and a
/// visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => break,
        }
    }
}

/// Parses `name: Type, ...` returning the field names. Commas nested in
/// parenthesized groups or between `<`/`>` do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `:` and the type, up to a top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the comma-separated fields of a tuple struct or tuple variant.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip discriminant (`= expr`) and the separating comma, if present.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
