//! Offline substitute for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! small part of serde's surface it actually uses: a `Serialize` trait that
//! renders values into a JSON [`Value`] tree (consumed by the vendored
//! `serde_json`), a marker `Deserialize` trait, and the two derive macros
//! re-exported from the vendored `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the single data model of the vendored serde stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array value.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The numeric content of this value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Marker trait backing `#[derive(Deserialize)]`; the workspace never
/// deserializes, so no methods are required.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort by key so the rendering is deterministic.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}
