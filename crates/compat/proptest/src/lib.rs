//! Offline substitute for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` macro with range
//! strategies (`lo..hi` over integers and floats), `ProptestConfig::with_cases`
//! and `prop_assert!`. Cases are sampled from a fixed-seed RNG, so failures are
//! reproducible; there is no shrinking.

use rand::rngs::SmallRng;
use rand::Rng;

pub mod prelude {
    pub use crate::{ProptestConfig, Strategy};
    // The macros are exported at the crate root by `#[macro_export]`; re-name
    // them here so `use proptest::prelude::*` finds them like upstream.
    pub use crate::{prop_assert, proptest};
}

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Value-generation strategies. Implemented for range expressions.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(self.start..self.end)
    }
}

#[doc(hidden)]
pub fn __new_rng(tag: u64) -> SmallRng {
    use rand::SeedableRng;
    SmallRng::seed_from_u64(0x5EED ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__new_rng(stringify!($name).len() as u64);
            for case in 0..config.cases {
                $(let $arg = ($strategy).sample(&mut rng);)*
                let run = || -> () { $body };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case} failed with inputs: {:?}",
                        ($(stringify!($arg), $arg),*)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}
