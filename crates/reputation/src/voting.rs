//! Vote aggregation over manager replies.
//!
//! When a node queries the `M` managers of a peer for its score, the replies
//! are aggregated with a **minimum** (Section 5.1): colluding managers can
//! only *raise* a stored score, and a lost reply cannot make a node look
//! better than its worst copy. The mean is provided as an ablation baseline.

use serde::{Deserialize, Serialize};

/// The vote function used to aggregate manager replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoteFunction {
    /// Minimum of the replies — the paper's choice.
    Min,
    /// Arithmetic mean of the replies — ablation baseline, vulnerable to
    /// colluding managers inflating scores.
    Mean,
}

impl VoteFunction {
    /// Aggregates the replies; `None` if there are none.
    pub fn aggregate(&self, replies: &[f64]) -> Option<f64> {
        match self {
            VoteFunction::Min => aggregate_min(replies),
            VoteFunction::Mean => aggregate_mean(replies),
        }
    }
}

/// Minimum vote (the paper's choice). `None` for an empty slice.
pub fn aggregate_min(replies: &[f64]) -> Option<f64> {
    replies.iter().copied().fold(None, |acc: Option<f64>, v| {
        Some(acc.map_or(v, |a| a.min(v)))
    })
}

/// Mean vote (ablation baseline). `None` for an empty slice.
pub fn aggregate_mean(replies: &[f64]) -> Option<f64> {
    if replies.is_empty() {
        None
    } else {
        Some(replies.iter().sum::<f64>() / replies.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_vote_resists_inflated_copies() {
        // Two colluding managers report an inflated score; min ignores them.
        let replies = [-12.0, 40.0, 40.0, -11.5];
        assert_eq!(aggregate_min(&replies), Some(-12.0));
        assert_eq!(VoteFunction::Min.aggregate(&replies), Some(-12.0));
        // The mean is dragged up by the colluders — the vulnerability the
        // paper avoids.
        assert!(aggregate_mean(&replies).unwrap() > 0.0);
    }

    #[test]
    fn empty_replies_yield_none() {
        assert_eq!(aggregate_min(&[]), None);
        assert_eq!(aggregate_mean(&[]), None);
        assert_eq!(VoteFunction::Mean.aggregate(&[]), None);
    }

    #[test]
    fn single_reply_is_returned_verbatim() {
        assert_eq!(aggregate_min(&[-3.5]), Some(-3.5));
        assert_eq!(aggregate_mean(&[-3.5]), Some(-3.5));
    }
}
