//! The per-manager score book.

use lifting_sim::NodeId;
use serde::{Deserialize, Serialize, Value};

/// Score record a manager keeps for one managed node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScoreRecord {
    /// Total blame value received for the node.
    pub blame: f64,
    /// Total compensation credited (expected wrongful blame, Section 6.2).
    pub compensation: f64,
    /// Number of gossip periods the node has been observed for (`r` in Eq. 6).
    pub periods: u64,
    /// True once the manager has voted to expel the node.
    pub expelled: bool,
}

impl ScoreRecord {
    /// Normalized score (Equation 6): `s = -(Σ blames - Σ compensation) / r`.
    /// Zero until at least one period has elapsed.
    pub fn normalized_score(&self) -> f64 {
        if self.periods == 0 {
            0.0
        } else {
            -(self.blame - self.compensation) / self.periods as f64
        }
    }
}

/// The state a manager node keeps about the nodes it manages.
///
/// Stored as two parallel vectors — managed ids sorted ascending and their
/// records — so the book costs O(managed) memory, not O(world size). An
/// earlier dense id-indexed layout made every manager's book world-sized,
/// which is an O(n²) memory bill across the population: at 100k nodes that
/// alone is hundreds of gigabytes. A manager only ever holds a small fixed
/// fan-in of nodes, so lookups are a binary search over ~25 ids (cheaper
/// than hashing) and every walk ([`end_period_credited`]
/// (Self::end_period_credited), [`expulsion_votes_into`]
/// (Self::expulsion_votes_into), [`iter`](Self::iter)) is a plain ascending
/// scan of the managed records — the same visit order as the dense and
/// hash-map layouts before it, so outputs are bit-identical.
#[derive(Debug, Clone, Default)]
pub struct ManagerState {
    /// Managed node ids, sorted ascending.
    ids: Vec<u32>,
    /// The record of `ids[i]` lives at `records[i]`.
    records: Vec<ScoreRecord>,
}

impl ManagerState {
    /// Creates an empty manager state.
    pub fn new() -> Self {
        ManagerState::default()
    }

    fn slot_mut(&mut self, node: NodeId) -> &mut ScoreRecord {
        let idx = node.index() as u32;
        // Registration is rare (once per managed node); keep both vectors
        // sorted on insert so every hot walk stays a plain ascending scan.
        let pos = self.ids.partition_point(|&i| i < idx);
        if self.ids.get(pos) != Some(&idx) {
            self.ids.insert(pos, idx);
            self.records.insert(pos, ScoreRecord::default());
        }
        &mut self.records[pos]
    }

    fn slot(&self, node: NodeId) -> Option<&ScoreRecord> {
        let idx = node.index() as u32;
        self.ids
            .binary_search(&idx)
            .ok()
            .map(|pos| &self.records[pos])
    }

    /// Registers a node under this manager (idempotent).
    pub fn register(&mut self, node: NodeId) {
        let _ = self.slot_mut(node);
    }

    /// Number of nodes managed.
    pub fn managed_count(&self) -> usize {
        self.ids.len()
    }

    /// Heap bytes held by the book (capacity walk, deterministic).
    pub fn estimated_heap_bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<ScoreRecord>()
            + self.ids.capacity() * std::mem::size_of::<u32>()
    }

    /// Applies a blame of `value` to `node` (registering it if needed).
    pub fn apply_blame(&mut self, node: NodeId, value: f64) {
        let r = self.slot_mut(node);
        r.blame += value.max(0.0);
    }

    /// Ends one gossip period for every managed node: increments `r` and
    /// credits the per-period compensation `b̃` (the expected wrongful blame
    /// computed from the loss rate, Equation 5).
    pub fn end_period(&mut self, compensation_per_period: f64) {
        self.end_period_filtered(compensation_per_period, |_| true);
    }

    /// Churn-aware variant of [`end_period`](Self::end_period): only the
    /// records for which `observed` returns true age. The runtime passes the
    /// membership view here so a node that departed mid-stream neither accrues
    /// observation periods nor collects compensation while offline — without
    /// this, a freerider could launder its score simply by leaving (frozen `r`
    /// with per-period credit would drift the normalized score of Equation 6
    /// toward zero).
    pub fn end_period_filtered(
        &mut self,
        compensation_per_period: f64,
        observed: impl Fn(NodeId) -> bool,
    ) {
        let credit = compensation_per_period.max(0.0);
        self.end_period_credited(|n| observed(n).then_some(credit));
    }

    /// The general period end: `credit` returns the compensation owed to
    /// each managed node this period, or `None` to freeze the record (the
    /// churn-aware "unobserved" case). Multi-channel runtimes credit each
    /// node the sum of its subscribed streams' Equation 5 values — a node
    /// watching one channel is only exposed to that channel's wrongful
    /// blames, so it must only be compensated for them.
    ///
    /// Returns the number of records visited, which is always the managed
    /// count — never the world size. Scaling tests pin this so the
    /// period-end walk can't silently regress to O(world size).
    pub fn end_period_credited(&mut self, credit: impl Fn(NodeId) -> Option<f64>) -> usize {
        for (&idx, r) in self.ids.iter().zip(self.records.iter_mut()) {
            let Some(c) = credit(NodeId::new(idx)) else {
                continue;
            };
            r.periods += 1;
            r.compensation += c.max(0.0);
        }
        self.ids.len()
    }

    /// The record for `node`, if managed.
    pub fn record(&self, node: NodeId) -> Option<ScoreRecord> {
        self.slot(node).copied()
    }

    /// The normalized score of `node`, if managed.
    pub fn normalized_score(&self, node: NodeId) -> Option<f64> {
        self.record(node).map(|r| r.normalized_score())
    }

    /// Marks `node` as expelled in this manager's book. Returns true if the
    /// vote changed (i.e. the node was not already marked).
    pub fn mark_expelled(&mut self, node: NodeId) -> bool {
        let r = self.slot_mut(node);
        let changed = !r.expelled;
        r.expelled = true;
        changed
    }

    /// True if this manager has voted to expel `node`.
    pub fn has_expelled(&self, node: NodeId) -> bool {
        self.record(node).map(|r| r.expelled).unwrap_or(false)
    }

    /// Checks every managed node against the detection threshold `eta` and
    /// marks those whose normalized score dropped below it; returns the list
    /// of nodes newly voted for expulsion. Nodes with fewer than `min_periods`
    /// observed periods are exempt (their score is not yet meaningful —
    /// Section 6.2 notes that the score of a joining node is not comparable).
    pub fn expulsion_votes(&mut self, eta: f64, min_periods: u64) -> Vec<NodeId> {
        let mut newly = Vec::new();
        self.expulsion_votes_into(eta, min_periods, &mut newly);
        newly
    }

    /// Allocation-free variant of [`expulsion_votes`](Self::expulsion_votes):
    /// appends the newly voted nodes (in ascending id order, matching the
    /// sorted output of the owned variant) to `out`.
    pub fn expulsion_votes_into(&mut self, eta: f64, min_periods: u64, out: &mut Vec<NodeId>) {
        for (&idx, r) in self.ids.iter().zip(self.records.iter_mut()) {
            if !r.expelled && r.periods >= min_periods && r.normalized_score() < eta {
                r.expelled = true;
                out.push(NodeId::new(idx));
            }
        }
    }

    /// Iterates over `(node, record)` pairs in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &ScoreRecord)> + '_ {
        self.ids
            .iter()
            .zip(self.records.iter())
            .map(|(&idx, r)| (NodeId::new(idx), r))
    }
}

impl Serialize for ManagerState {
    fn to_json_value(&self) -> Value {
        // Same shape the hash-map version rendered: `[[node, record], ...]`
        // sorted by node id (the map serializer sorted by key).
        Value::Array(
            self.iter()
                .map(|(n, r)| Value::Array(vec![n.to_json_value(), r.to_json_value()]))
                .collect(),
        )
    }
}

impl Deserialize for ManagerState {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_score_follows_equation_6() {
        let mut m = ManagerState::new();
        let node = NodeId::new(3);
        m.register(node);
        // Two periods, 80 and 70 blame, compensation 73 per period.
        m.apply_blame(node, 80.0);
        m.end_period(73.0);
        m.apply_blame(node, 70.0);
        m.end_period(73.0);
        let s = m.normalized_score(node).unwrap();
        // s = -((80+70) - 2*73)/2 = -2.
        assert!((s - (-2.0)).abs() < 1e-12);
        assert_eq!(m.record(node).unwrap().periods, 2);
    }

    #[test]
    fn compensation_centres_honest_scores_at_zero() {
        let mut m = ManagerState::new();
        let node = NodeId::new(1);
        m.register(node);
        for _ in 0..100 {
            m.apply_blame(node, 72.95);
            m.end_period(72.95);
        }
        assert!(m.normalized_score(node).unwrap().abs() < 1e-9);
    }

    #[test]
    fn unobserved_nodes_have_zero_score() {
        let mut m = ManagerState::new();
        m.register(NodeId::new(9));
        assert_eq!(m.normalized_score(NodeId::new(9)), Some(0.0));
        assert_eq!(m.normalized_score(NodeId::new(10)), None);
        assert_eq!(m.managed_count(), 1);
    }

    #[test]
    fn negative_blames_are_ignored() {
        let mut m = ManagerState::new();
        let node = NodeId::new(0);
        m.apply_blame(node, -50.0);
        m.end_period(0.0);
        assert_eq!(m.normalized_score(node), Some(0.0));
    }

    #[test]
    fn expulsion_votes_respect_threshold_and_grace_period() {
        let mut m = ManagerState::new();
        let bad = NodeId::new(1);
        let good = NodeId::new(2);
        let young = NodeId::new(3);
        m.register(bad);
        m.register(good);
        for _ in 0..20 {
            m.apply_blame(bad, 90.0);
            m.apply_blame(good, 73.0);
            m.end_period(73.0);
        }
        m.register(young);
        m.apply_blame(young, 500.0);
        // bad has score -17, good ≈ 0, young has 0 periods.
        let votes = m.expulsion_votes(-9.75, 5);
        assert_eq!(votes, vec![bad]);
        assert!(m.has_expelled(bad));
        assert!(!m.has_expelled(good));
        assert!(!m.has_expelled(young));
        // Votes are not emitted twice.
        assert!(m.expulsion_votes(-9.75, 5).is_empty());
    }

    #[test]
    fn filtered_period_end_freezes_departed_records() {
        let mut m = ManagerState::new();
        let online = NodeId::new(1);
        let departed = NodeId::new(2);
        m.register(online);
        m.register(departed);
        for _ in 0..10 {
            m.end_period_filtered(5.0, |n| n == online);
        }
        assert_eq!(m.record(online).unwrap().periods, 10);
        assert_eq!(m.record(departed).unwrap().periods, 0);
        assert_eq!(m.record(departed).unwrap().compensation, 0.0);
        // The unfiltered variant behaves exactly like an always-true filter.
        m.end_period(5.0);
        assert_eq!(m.record(departed).unwrap().periods, 1);
    }

    #[test]
    fn period_end_cost_scales_with_managed_not_world_size() {
        // A manager in a 10k-node world that manages only 100 of them: both
        // the memory and the period-end walk must scale with the managed
        // count, never with the id space.
        let world = 10_000u32;
        let managed = 100u32;
        let mut m = ManagerState::new();
        for i in 0..managed {
            // Spread ids across the whole space; the last one lands at 9999.
            m.register(NodeId::new(i * (world / managed) + world / managed - 1));
        }
        assert_eq!(m.managed_count(), managed as usize);
        assert!(
            m.estimated_heap_bytes() < 64 * managed as usize,
            "the book must cost O(managed) memory, not O(world): {} bytes",
            m.estimated_heap_bytes()
        );
        let visited = m.end_period_credited(|_| Some(1.0));
        assert_eq!(
            visited, managed as usize,
            "period end must walk the live index, not the id-indexed book"
        );
        // Every managed record aged exactly once; the walk stayed ascending.
        let ids: Vec<u32> = m
            .iter()
            .map(|(n, r)| {
                assert_eq!(r.periods, 1);
                n.index() as u32
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), managed as usize);
    }

    #[test]
    fn late_registration_keeps_walk_order_ascending() {
        // Out-of-order registration (rejoins, blames against unseen ids) must
        // keep the live index — and therefore every walk — sorted by id.
        let mut m = ManagerState::new();
        for id in [9u32, 2, 7, 0, 5] {
            m.apply_blame(NodeId::new(id), 1.0);
        }
        let ids: Vec<usize> = m.iter().map(|(n, _)| n.index()).collect();
        assert_eq!(ids, vec![0, 2, 5, 7, 9]);
        let mut votes = Vec::new();
        m.end_period_credited(|_| Some(0.0));
        m.expulsion_votes_into(-0.5, 1, &mut votes);
        let vote_ids: Vec<usize> = votes.iter().map(|n| n.index()).collect();
        assert_eq!(vote_ids, vec![0, 2, 5, 7, 9]);
    }

    #[test]
    fn mark_expelled_is_idempotent() {
        let mut m = ManagerState::new();
        assert!(m.mark_expelled(NodeId::new(4)));
        assert!(!m.mark_expelled(NodeId::new(4)));
        assert!(m.has_expelled(NodeId::new(4)));
    }
}
