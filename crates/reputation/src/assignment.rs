//! Manager assignment: which nodes hold a copy of each node's score.

use lifting_sim::{derive_rng, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Population size at which [`ManagerAssignment::new`] switches from the
/// legacy full-shuffle sampler to rejection sampling. Below this every
/// historical assignment (and therefore every golden digest) is reproduced
/// bit-for-bit; at or above it the shuffle's O(n) work and O(n) scratch *per
/// node* would make construction O(n²) — minutes of setup and gigabytes of
/// transient allocation at 100k nodes — so large worlds draw `M` distinct
/// ids directly instead.
const REJECTION_SAMPLING_THRESHOLD: usize = 1_000;

/// Deterministic, seed-derived assignment of `M` managers to every node.
///
/// Managers are chosen pseudo-randomly (never including the node itself), the
/// way a DHT or rendezvous hashing would place score replicas in Alliatrust.
/// The assignment is a pure function of `(seed, n, M)` so every participant
/// can compute everyone's managers locally, without a lookup service.
#[derive(Debug, Clone)]
pub struct ManagerAssignment {
    managers: Vec<Vec<NodeId>>,
    per_node: usize,
}

impl ManagerAssignment {
    /// Computes the assignment for `n` nodes with `per_node` managers each.
    ///
    /// # Panics
    ///
    /// Panics if `per_node == 0` or if `per_node >= n` (a node cannot manage
    /// itself, so at most `n - 1` managers are available).
    pub fn new(n: usize, per_node: usize, seed: u64) -> Self {
        assert!(per_node > 0, "at least one manager per node is required");
        assert!(
            per_node < n,
            "cannot assign {per_node} managers among {n} nodes"
        );
        let managers = (0..n)
            .map(|i| {
                let mut rng = derive_rng(seed, 0x000A_111A_0000 + i as u64);
                if n < REJECTION_SAMPLING_THRESHOLD {
                    let mut candidates: Vec<NodeId> = (0..n as u32)
                        .filter(|j| *j as usize != i)
                        .map(NodeId::new)
                        .collect();
                    candidates.shuffle(&mut rng);
                    candidates.truncate(per_node);
                    // `truncate` keeps the full n-sized backing allocation;
                    // the table must cost O(M) per node, not O(n).
                    candidates.shrink_to_fit();
                    candidates
                } else {
                    // Rejection sampling: O(M²) per node instead of O(n).
                    // Duplicate probability is M/n, vanishing at this scale.
                    let mut picked: Vec<NodeId> = Vec::with_capacity(per_node);
                    while picked.len() < per_node {
                        let j = rng.gen_range(0..n as u32);
                        if j as usize == i || picked.iter().any(|p| p.index() == j as usize) {
                            continue;
                        }
                        picked.push(NodeId::new(j));
                    }
                    picked
                }
            })
            .collect();
        ManagerAssignment { managers, per_node }
    }

    /// Number of managers assigned to each node (`M`).
    pub fn managers_per_node(&self) -> usize {
        self.per_node
    }

    /// Number of nodes covered by the assignment.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// True if the assignment covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// Heap bytes held by the assignment tables (capacity walk,
    /// deterministic).
    pub fn estimated_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.managers.capacity() * size_of::<Vec<NodeId>>()
            + self
                .managers
                .iter()
                .map(|m| m.capacity() * size_of::<NodeId>())
                .sum::<usize>()
    }

    /// The managers of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the assignment.
    pub fn managers_of(&self, node: NodeId) -> &[NodeId] {
        &self.managers[node.index()]
    }

    /// Iterates over every `(managed node, manager)` pair — useful to build
    /// the reverse index of which nodes a given manager is responsible for.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.managers
            .iter()
            .enumerate()
            .flat_map(|(i, ms)| ms.iter().map(move |m| (NodeId::new(i as u32), *m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn assignment_has_m_distinct_managers_excluding_self() {
        let a = ManagerAssignment::new(300, 25, 7);
        assert_eq!(a.len(), 300);
        assert_eq!(a.managers_per_node(), 25);
        for i in 0..300u32 {
            let ms = a.managers_of(NodeId::new(i));
            assert_eq!(ms.len(), 25);
            let unique: HashSet<_> = ms.iter().collect();
            assert_eq!(unique.len(), 25, "managers must be distinct");
            assert!(!ms.contains(&NodeId::new(i)), "a node never manages itself");
        }
    }

    #[test]
    fn assignment_is_deterministic_in_the_seed() {
        let a = ManagerAssignment::new(100, 5, 42);
        let b = ManagerAssignment::new(100, 5, 42);
        let c = ManagerAssignment::new(100, 5, 43);
        for i in 0..100u32 {
            assert_eq!(a.managers_of(NodeId::new(i)), b.managers_of(NodeId::new(i)));
        }
        assert!(
            (0..100u32).any(|i| a.managers_of(NodeId::new(i)) != c.managers_of(NodeId::new(i))),
            "different seeds should give different assignments"
        );
    }

    #[test]
    fn manager_load_is_roughly_balanced() {
        let a = ManagerAssignment::new(300, 25, 1);
        let mut load = vec![0usize; 300];
        for (_, manager) in a.iter() {
            load[manager.index()] += 1;
        }
        let expected = 25.0;
        for (i, &l) in load.iter().enumerate() {
            assert!(
                (l as f64) > expected * 0.3 && (l as f64) < expected * 3.0,
                "manager {i} has load {l}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn too_many_managers_panics() {
        let _ = ManagerAssignment::new(5, 5, 0);
    }

    #[test]
    fn large_world_sampler_keeps_the_invariants_and_compact_memory() {
        // Above the threshold the rejection sampler takes over: managers must
        // still be distinct, never the node itself, deterministic in the
        // seed, and the table must cost O(M) per node rather than O(n).
        let n = REJECTION_SAMPLING_THRESHOLD;
        let a = ManagerAssignment::new(n, 25, 7);
        let b = ManagerAssignment::new(n, 25, 7);
        for i in (0..n as u32).step_by(97) {
            let ms = a.managers_of(NodeId::new(i));
            assert_eq!(ms.len(), 25);
            let unique: HashSet<_> = ms.iter().collect();
            assert_eq!(unique.len(), 25, "managers must be distinct");
            assert!(!ms.contains(&NodeId::new(i)), "a node never manages itself");
            assert_eq!(ms, b.managers_of(NodeId::new(i)));
        }
        assert!(
            a.estimated_heap_bytes() < n * 64 * 25,
            "assignment must be O(n·M) memory, got {} bytes",
            a.estimated_heap_bytes()
        );
    }
}
