//! Alliatrust-like distributed reputation architecture (Section 5.1).
//!
//! Every node is assigned `M` random *managers* that keep a copy of its
//! reputation. Verification procedures emit blame messages to the target's
//! managers; reading a score queries the managers and votes over the returned
//! values with a **minimum** (resilient to message loss and to colluding
//! managers that inflate scores); the same managers decide expulsion.
//!
//! The crate is transport-agnostic: [`ManagerAssignment`] computes who manages
//! whom, [`ManagerState`] is the per-manager score book (blames, per-period
//! compensation, normalized scores, expulsion votes), and [`voting`] holds the
//! vote aggregation functions. `lifting-runtime` moves the blame messages and
//! expulsion decisions over the simulated network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod store;
pub mod voting;

pub use assignment::ManagerAssignment;
pub use store::{ManagerState, ScoreRecord};
pub use voting::{aggregate_mean, aggregate_min, VoteFunction};

pub use lifting_sim::NodeId;
