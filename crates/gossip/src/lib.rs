//! Three-phase asymmetric gossip dissemination (Section 3 of the paper).
//!
//! Content is split into chunks identified by chunk ids. Every gossip period
//! `Tg` a node *proposes* the set of chunks it received since its last propose
//! phase to `f` partners picked uniformly at random; each partner *requests*
//! the chunks it misses; the proposer then *serves* the requested chunks.
//! Gossip is infect-and-die: once proposed, a chunk is never proposed again by
//! the same node. All dissemination runs over lossy UDP and nothing is
//! retransmitted.
//!
//! The crate is written sans-IO: [`node::GossipNode`] is a pure state machine
//! whose methods return the messages to send; `lifting-runtime` moves them
//! through the simulated network, and unit tests drive them directly.
//!
//! Freerider behaviours from Section 4 of the paper are first-class:
//! [`behavior::Behavior`] captures the degree of freeriding
//! `Δ = (δ1, δ2, δ3)` (reduced fanout, partial propose, partial serve) and the
//! gossip-period stretching attack; biased partner selection lives in
//! `lifting-membership`, and verification-layer collusion (cover-ups and the
//! man-in-the-middle of Figure 8b) lives in `lifting-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod buffer;
pub mod chunk;
pub mod config;
pub mod messages;
pub mod node;
pub mod source;

pub use behavior::{Behavior, FreeriderConfig};
pub use buffer::{PlayoutBuffer, StreamHealth};
pub use chunk::{Chunk, ChunkId};
pub use config::GossipConfig;
pub use messages::{GossipMessage, ProposePayload, RequestPayload, ServePayload};
pub use node::{GossipNode, ProposeRound};
pub use source::StreamSource;

pub use lifting_sim::NodeId;
