//! The broadcast sources, one per stream.

use lifting_sim::{SimDuration, SimTime, StreamId};
use serde::{Deserialize, Serialize};

use crate::chunk::{Chunk, ChunkId};

/// One stream's source: emits fixed-size chunks at a constant bit rate.
///
/// The paper broadcasts streams of 674, 1082 and 2036 kbps from a single
/// source; with the default 4 KiB chunks a 674 kbps stream produces about 20
/// chunks per second. A multi-channel deployment runs several sources side by
/// side, each with its own rate and start offset, all identified by their
/// [`StreamId`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSource {
    stream: StreamId,
    rate_bps: u64,
    chunk_size: u32,
    next_index: u64,
    next_emission: SimTime,
}

impl StreamSource {
    /// Creates a source for `stream` emitting `rate_bps` bits per second in
    /// chunks of `chunk_size` bytes, starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the rate or the chunk size is zero.
    pub fn new(stream: StreamId, rate_bps: u64, chunk_size: u32) -> Self {
        assert!(rate_bps > 0, "stream rate must be positive");
        assert!(chunk_size > 0, "chunk size must be positive");
        StreamSource {
            stream,
            rate_bps,
            chunk_size,
            next_index: 0,
            next_emission: SimTime::ZERO,
        }
    }

    /// Delays the first emission to `start` (channels need not begin
    /// together: a stream may come on air mid-run).
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.next_emission = start;
        self
    }

    /// The stream this source broadcasts.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The stream rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// The chunk payload size in bytes.
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// Interval between consecutive chunk emissions.
    pub fn chunk_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.chunk_size as f64 * 8.0 / self.rate_bps as f64)
    }

    /// Number of chunks emitted per second (possibly fractional).
    pub fn chunks_per_second(&self) -> f64 {
        self.rate_bps as f64 / (self.chunk_size as f64 * 8.0)
    }

    /// The instant the next chunk will be emitted.
    pub fn next_emission(&self) -> SimTime {
        self.next_emission
    }

    /// Number of chunks emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_index
    }

    /// Emits the next chunk, stamping it with its scheduled emission instant
    /// (callers should invoke this when the simulation clock reaches
    /// [`next_emission`]).
    ///
    /// [`next_emission`]: StreamSource::next_emission
    pub fn emit(&mut self) -> Chunk {
        let chunk = Chunk::new(
            ChunkId::new(self.stream, self.next_index),
            self.chunk_size,
            self.next_emission,
        );
        self.next_index += 1;
        self.next_emission += self.chunk_interval();
        chunk
    }

    /// Emits every chunk due at or before `now` (useful when driving the
    /// source from a coarse timer).
    pub fn emit_due(&mut self, now: SimTime) -> Vec<Chunk> {
        let mut out = Vec::new();
        while self.next_emission <= now {
            out.push(self.emit());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stream_rate_produces_expected_chunk_rate() {
        // 674 kbps with 4 KiB chunks ≈ 20.6 chunks/s.
        let src = StreamSource::new(StreamId::PRIMARY, 674_000, 4_096);
        let cps = src.chunks_per_second();
        assert!((cps - 20.57).abs() < 0.1, "chunks/s = {cps}");
        let interval = src.chunk_interval();
        assert!((interval.as_secs_f64() - 1.0 / cps).abs() < 1e-6);
    }

    #[test]
    fn emission_is_sequential_and_timestamped() {
        let mut src = StreamSource::new(StreamId::PRIMARY, 1_000_000, 1_250); // 100 chunks/s
        let c0 = src.emit();
        let c1 = src.emit();
        assert_eq!(c0.id, ChunkId::primary(0));
        assert_eq!(c1.id, ChunkId::primary(1));
        assert_eq!(c0.emitted_at, SimTime::ZERO);
        assert_eq!(c1.emitted_at, SimTime::from_millis(10));
        assert_eq!(src.emitted(), 2);
    }

    #[test]
    fn secondary_stream_chunks_carry_the_stream_identity() {
        let stream = StreamId::new(3);
        let mut src =
            StreamSource::new(stream, 1_000_000, 1_250).starting_at(SimTime::from_secs(2));
        assert_eq!(src.next_emission(), SimTime::from_secs(2));
        let c = src.emit();
        assert_eq!(c.id, ChunkId::new(stream, 0));
        assert_eq!(c.id.stream(), stream);
        assert_eq!(c.emitted_at, SimTime::from_secs(2));
        assert_eq!(src.stream(), stream);
    }

    #[test]
    fn emit_due_catches_up_to_now() {
        let mut src = StreamSource::new(StreamId::PRIMARY, 1_000_000, 1_250); // 10 ms per chunk
        let due = src.emit_due(SimTime::from_millis(35));
        assert_eq!(due.len(), 4); // t = 0, 10, 20, 30
        assert_eq!(src.next_emission(), SimTime::from_millis(40));
        assert!(src.emit_due(SimTime::from_millis(35)).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = StreamSource::new(StreamId::PRIMARY, 0, 1_000);
    }
}
