//! Gossip protocol configuration.

use lifting_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Static parameters of the three-phase gossip protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Fanout `f`: number of partners each propose phase targets. The paper
    /// uses 7 on PlanetLab (300 nodes) and 12 in the 10,000-node simulations
    /// (`f` slightly above `ln n`).
    pub fanout: usize,
    /// Gossip period `Tg` between consecutive propose phases (500 ms in the
    /// paper's deployment).
    pub gossip_period: SimDuration,
    /// Fraction of the chunks due at a given lag that a node must have
    /// received to be counted as "viewing a clear stream" (Figure 1). The
    /// paper does not give the exact threshold used by its player; 99 % is the
    /// conventional choice for gossip streaming evaluations.
    pub clear_stream_threshold: f64,
}

impl GossipConfig {
    /// The PlanetLab deployment parameters of Section 7.1: `f = 7`,
    /// `Tg = 500 ms`.
    pub fn planetlab() -> Self {
        GossipConfig {
            fanout: 7,
            gossip_period: SimDuration::from_millis(500),
            clear_stream_threshold: 0.99,
        }
    }

    /// The large-scale simulation parameters of Section 6: `f = 12`.
    pub fn simulation() -> Self {
        GossipConfig {
            fanout: 12,
            gossip_period: SimDuration::from_millis(500),
            clear_stream_threshold: 0.99,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fanout is zero, the gossip period is zero, or the
    /// clear-stream threshold is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.fanout > 0, "fanout must be positive");
        assert!(
            !self.gossip_period.is_zero(),
            "gossip period must be positive"
        );
        assert!(
            self.clear_stream_threshold > 0.0 && self.clear_stream_threshold <= 1.0,
            "clear-stream threshold must be in (0, 1]"
        );
    }
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig::planetlab()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let p = GossipConfig::planetlab();
        assert_eq!(p.fanout, 7);
        assert_eq!(p.gossip_period, SimDuration::from_millis(500));
        let s = GossipConfig::simulation();
        assert_eq!(s.fanout, 12);
        p.validate();
        s.validate();
    }

    #[test]
    #[should_panic]
    fn invalid_config_is_rejected() {
        let mut c = GossipConfig::planetlab();
        c.fanout = 0;
        c.validate();
    }
}
