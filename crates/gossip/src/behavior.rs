//! Node behaviours: honest or freeriding.
//!
//! Section 4 of the paper enumerates the ways a freerider can deviate in each
//! phase. The dissemination-level deviations are captured here; partner-
//! selection bias is configured through `lifting-membership` samplers and
//! verification-layer collusion (lying in acks, covering up colluders) through
//! `lifting-core`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dissemination-level freeriding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeriderConfig {
    /// `δ1` — fanout decrease: the node proposes to `(1-δ1)·f` partners.
    pub delta1: f64,
    /// `δ2` — partial propose: chunks received from a fraction `δ2` of the
    /// nodes that served it are silently dropped from the next proposal.
    pub delta2: f64,
    /// `δ3` — partial serve: only `(1-δ3)·|R|` of the requested chunks are
    /// served.
    pub delta3: f64,
    /// Gossip-period stretching: the node only runs a propose phase every
    /// `period_stretch` periods (1 = no stretching). Section 4.1(iv).
    pub period_stretch: u32,
}

impl FreeriderConfig {
    /// A freerider applying the same decrease `δ` to every deviation, as in
    /// Figure 12.
    pub fn uniform(delta: f64) -> Self {
        FreeriderConfig {
            delta1: delta,
            delta2: delta,
            delta3: delta,
            period_stretch: 1,
        }
    }

    /// The freerider used in the PlanetLab deployment (Section 7.1):
    /// `fˆ = 6` of `f = 7`, propose 90 %, serve 90 %.
    pub fn planetlab() -> Self {
        FreeriderConfig {
            delta1: 1.0 / 7.0,
            delta2: 0.1,
            delta3: 0.1,
            period_stretch: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any `δ` is outside `[0, 1]` or `period_stretch` is zero.
    pub fn validate(&self) {
        for (name, v) in [
            ("delta1", self.delta1),
            ("delta2", self.delta2),
            ("delta3", self.delta3),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} not in [0, 1]");
        }
        assert!(self.period_stretch >= 1, "period stretch must be ≥ 1");
    }

    /// Upload-bandwidth gain: `1 - (1-δ1)(1-δ2)(1-δ3)`.
    pub fn gain(&self) -> f64 {
        1.0 - (1.0 - self.delta1) * (1.0 - self.delta2) * (1.0 - self.delta3)
    }
}

/// Behaviour of a node at the dissemination layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Behavior {
    /// Strictly follows the protocol.
    #[default]
    Honest,
    /// Deviates according to the embedded configuration.
    Freerider(FreeriderConfig),
}

impl Behavior {
    /// True if the node is a freerider.
    pub fn is_freerider(&self) -> bool {
        matches!(self, Behavior::Freerider(_))
    }

    /// The freerider configuration, if any.
    pub fn freerider(&self) -> Option<&FreeriderConfig> {
        match self {
            Behavior::Honest => None,
            Behavior::Freerider(cfg) => Some(cfg),
        }
    }

    /// The number of partners this node will actually contact given the
    /// protocol fanout `f` (randomized rounding of `(1-δ1)·f` so the expected
    /// value matches the analysis).
    pub fn effective_fanout<R: Rng + ?Sized>(&self, fanout: usize, rng: &mut R) -> usize {
        match self {
            Behavior::Honest => fanout,
            Behavior::Freerider(cfg) => {
                let target = (1.0 - cfg.delta1) * fanout as f64;
                let base = target.floor();
                let mut k = base as usize;
                let frac = target - base;
                if frac > 0.0 && rng.gen_bool(frac) {
                    k += 1;
                }
                k.min(fanout)
            }
        }
    }

    /// The number of chunks this node will serve out of `requested` (randomized
    /// rounding of `(1-δ3)·|R|`).
    pub fn effective_serve<R: Rng + ?Sized>(&self, requested: usize, rng: &mut R) -> usize {
        match self {
            Behavior::Honest => requested,
            Behavior::Freerider(cfg) => {
                let target = (1.0 - cfg.delta3) * requested as f64;
                let base = target.floor();
                let mut k = base as usize;
                let frac = target - base;
                if frac > 0.0 && rng.gen_bool(frac) {
                    k += 1;
                }
                k.min(requested)
            }
        }
    }

    /// Whether chunks received from one particular source should be dropped
    /// from the next proposal (partial-propose attack): true with probability
    /// `δ2` for freeriders, never for honest nodes.
    pub fn drops_source<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match self {
            Behavior::Honest => false,
            Behavior::Freerider(cfg) => cfg.delta2 > 0.0 && rng.gen_bool(cfg.delta2),
        }
    }

    /// Whether the node skips its propose phase at `period_index` because it
    /// stretches its gossip period.
    pub fn skips_period(&self, period_index: u64) -> bool {
        match self {
            Behavior::Honest => false,
            Behavior::Freerider(cfg) => {
                cfg.period_stretch > 1 && !period_index.is_multiple_of(cfg.period_stretch as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    #[test]
    fn honest_behaviour_never_deviates() {
        let mut rng = derive_rng(1, 0);
        let b = Behavior::Honest;
        assert!(!b.is_freerider());
        assert_eq!(b.effective_fanout(7, &mut rng), 7);
        assert_eq!(b.effective_serve(4, &mut rng), 4);
        assert!(!b.drops_source(&mut rng));
        assert!(!b.skips_period(3));
    }

    #[test]
    fn planetlab_freerider_contacts_six_of_seven() {
        let mut rng = derive_rng(2, 0);
        let b = Behavior::Freerider(FreeriderConfig::planetlab());
        // δ1 = 1/7 exactly ⇒ (1-δ1)·7 = 6, no rounding randomness.
        for _ in 0..20 {
            assert_eq!(b.effective_fanout(7, &mut rng), 6);
        }
        assert!((FreeriderConfig::planetlab().gain() - 0.3).abs() < 0.01);
    }

    #[test]
    fn effective_serve_matches_delta3_in_expectation() {
        let mut rng = derive_rng(3, 0);
        let b = Behavior::Freerider(FreeriderConfig::uniform(0.1));
        let total: usize = (0..10_000).map(|_| b.effective_serve(4, &mut rng)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((mean - 3.6).abs() < 0.05, "mean served {mean}");
    }

    #[test]
    fn drops_source_matches_delta2_in_expectation() {
        let mut rng = derive_rng(4, 0);
        let b = Behavior::Freerider(FreeriderConfig::uniform(0.25));
        let drops = (0..10_000).filter(|_| b.drops_source(&mut rng)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn period_stretching_skips_intermediate_periods() {
        let b = Behavior::Freerider(FreeriderConfig {
            delta1: 0.0,
            delta2: 0.0,
            delta3: 0.0,
            period_stretch: 3,
        });
        let skipped: Vec<bool> = (0..6).map(|i| b.skips_period(i)).collect();
        assert_eq!(skipped, vec![false, true, true, false, true, true]);
    }

    #[test]
    #[should_panic]
    fn invalid_freerider_config_panics() {
        FreeriderConfig {
            delta1: 2.0,
            delta2: 0.0,
            delta3: 0.0,
            period_stretch: 1,
        }
        .validate();
    }
}
