//! Stream chunks.

use std::fmt;

use lifting_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a stream chunk. Chunk ids are assigned sequentially by the
/// broadcast source, so they double as stream positions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// Creates a chunk identifier.
    pub const fn new(id: u64) -> Self {
        ChunkId(id)
    }

    /// The raw sequence number.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A stream chunk: its identity, its size on the wire and the instant the
/// source emitted it (used to measure stream lag at the receivers).
///
/// The payload itself is modelled by its size only — every metric of the paper
/// (stream health, overhead ratios, scores) is a function of chunk timing and
/// byte counts, never of payload content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chunk {
    /// Chunk identity (sequence number in the stream).
    pub id: ChunkId,
    /// Payload size in bytes.
    pub size_bytes: u32,
    /// Instant at which the source emitted this chunk.
    pub emitted_at: SimTime,
}

impl Chunk {
    /// Creates a chunk.
    pub fn new(id: ChunkId, size_bytes: u32, emitted_at: SimTime) -> Self {
        Chunk {
            id,
            size_bytes,
            emitted_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ids_order_by_stream_position() {
        assert!(ChunkId::new(3) < ChunkId::new(10));
        assert_eq!(ChunkId::new(5).value(), 5);
        assert_eq!(ChunkId::new(5).to_string(), "c5");
    }

    #[test]
    fn chunk_carries_emission_metadata() {
        let c = Chunk::new(ChunkId::new(1), 4_096, SimTime::from_millis(250));
        assert_eq!(c.size_bytes, 4_096);
        assert_eq!(c.emitted_at, SimTime::from_millis(250));
    }
}
