//! Stream chunks.

use std::fmt;

use lifting_sim::{SimTime, StreamId};
use serde::{Deserialize, Serialize};

/// Identifier of a stream chunk: the pair `(StreamId, ChunkIndex)`.
///
/// Chunk indices are assigned sequentially by each stream's broadcast source,
/// so within a stream they double as stream positions. The pair is packed
/// into one word — stream in the top [`STREAM_BITS`](ChunkId::STREAM_BITS)
/// bits, index below — so a chunk id still costs 8 bytes on the wire and in
/// every message payload, and per-stream state can keep using flat
/// index-addressed storage via [`index`](ChunkId::index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// Bits reserved for the stream identifier (up to 65,536 channels).
    pub const STREAM_BITS: u32 = 16;
    /// Bits left for the per-stream sequence number.
    pub const INDEX_BITS: u32 = 64 - Self::STREAM_BITS;
    const INDEX_MASK: u64 = (1 << Self::INDEX_BITS) - 1;

    /// Creates a chunk identifier for position `index` of `stream`.
    pub const fn new(stream: StreamId, index: u64) -> Self {
        debug_assert!(index <= Self::INDEX_MASK, "chunk index overflows 48 bits");
        ChunkId(((stream.0 as u64) << Self::INDEX_BITS) | (index & Self::INDEX_MASK))
    }

    /// Creates a chunk identifier on the primary stream (the single-channel
    /// scenarios' only stream).
    pub const fn primary(index: u64) -> Self {
        ChunkId::new(StreamId::PRIMARY, index)
    }

    /// The stream this chunk belongs to.
    pub const fn stream(self) -> StreamId {
        StreamId((self.0 >> Self::INDEX_BITS) as u16)
    }

    /// The sequence number within the stream (dense; usable as an index into
    /// per-stream flat storage).
    pub const fn index(self) -> u64 {
        self.0 & Self::INDEX_MASK
    }

    /// The raw packed word. Orders by `(stream, index)` lexicographically.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stream() == StreamId::PRIMARY {
            write!(f, "c{}", self.index())
        } else {
            write!(f, "{}c{}", self.stream(), self.index())
        }
    }
}

/// A stream chunk: its identity, its size on the wire and the instant the
/// source emitted it (used to measure stream lag at the receivers).
///
/// The payload itself is modelled by its size only — every metric of the paper
/// (stream health, overhead ratios, scores) is a function of chunk timing and
/// byte counts, never of payload content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chunk {
    /// Chunk identity (stream and sequence number within it).
    pub id: ChunkId,
    /// Payload size in bytes.
    pub size_bytes: u32,
    /// Instant at which the source emitted this chunk.
    pub emitted_at: SimTime,
}

impl Chunk {
    /// Creates a chunk.
    pub fn new(id: ChunkId, size_bytes: u32, emitted_at: SimTime) -> Self {
        Chunk {
            id,
            size_bytes,
            emitted_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ids_order_by_stream_then_position() {
        assert!(ChunkId::primary(3) < ChunkId::primary(10));
        assert!(ChunkId::primary(10) < ChunkId::new(StreamId::new(1), 0));
        assert_eq!(ChunkId::primary(5).value(), 5);
        assert_eq!(ChunkId::primary(5).to_string(), "c5");
        assert_eq!(ChunkId::new(StreamId::new(2), 9).to_string(), "s2c9");
    }

    #[test]
    fn chunk_identity_round_trips_through_the_packing() {
        let id = ChunkId::new(StreamId::new(7), 123_456);
        assert_eq!(id.stream(), StreamId::new(7));
        assert_eq!(id.index(), 123_456);
        let primary = ChunkId::primary(9);
        assert_eq!(primary.stream(), StreamId::PRIMARY);
        assert_eq!(primary.index(), 9);
        assert_eq!(primary.value(), 9, "primary-stream ids pack to the index");
    }

    #[test]
    fn chunk_carries_emission_metadata() {
        let c = Chunk::new(ChunkId::primary(1), 4_096, SimTime::from_millis(250));
        assert_eq!(c.size_bytes, 4_096);
        assert_eq!(c.emitted_at, SimTime::from_millis(250));
    }
}
