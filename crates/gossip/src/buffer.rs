//! Playout buffer and stream-health metrics (Figure 1 of the paper).
//!
//! Each node records when it received each chunk. Given the list of chunks
//! the source emitted, a node "views a clear stream" at lag `L` if at least a
//! configurable fraction of the chunks emitted during the observation window
//! reached it within `L` of their emission. Figure 1 plots, for each lag, the
//! fraction of nodes for which this holds.

use lifting_sim::{SimDuration, SimTime, StreamId};
use serde::{Deserialize, Serialize, Value};

use crate::chunk::{Chunk, ChunkId};

/// Reception record of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// When the source emitted the chunk.
    pub emitted_at: SimTime,
    /// When this node first received it.
    pub received_at: SimTime,
}

/// Per-node, per-stream record of chunk receptions, flat-indexed by the
/// sequential chunk index within the stream (one array store per reception on
/// the hot path, no hashing).
#[derive(Debug, Clone, Default)]
pub struct PlayoutBuffer {
    stream: StreamId,
    received: Vec<Option<Receipt>>,
    len: usize,
}

impl PlayoutBuffer {
    /// Creates an empty buffer for the primary stream.
    pub fn new() -> Self {
        PlayoutBuffer::default()
    }

    /// Heap bytes held by the receipt table (capacity walk, deterministic).
    pub fn estimated_heap_bytes(&self) -> usize {
        self.received.capacity() * std::mem::size_of::<Option<Receipt>>()
    }

    /// Creates an empty buffer for `stream`.
    pub fn for_stream(stream: StreamId) -> Self {
        PlayoutBuffer {
            stream,
            ..PlayoutBuffer::default()
        }
    }

    /// The stream this buffer plays out.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Records the reception of `chunk` at `now`. Only the first reception is
    /// kept. Returns true if the chunk was new.
    pub fn record(&mut self, chunk: &Chunk, now: SimTime) -> bool {
        debug_assert_eq!(chunk.id.stream(), self.stream, "chunk from another plane");
        let idx = chunk.id.index() as usize;
        if idx >= self.received.len() {
            self.received.resize(idx + 1, None);
        }
        if self.received[idx].is_some() {
            return false;
        }
        self.received[idx] = Some(Receipt {
            emitted_at: chunk.emitted_at,
            received_at: now,
        });
        self.len += 1;
        true
    }

    fn get(&self, id: ChunkId) -> Option<&Receipt> {
        if id.stream() != self.stream {
            return None;
        }
        self.received.get(id.index() as usize)?.as_ref()
    }

    /// True if the chunk has been received.
    pub fn contains(&self, id: ChunkId) -> bool {
        self.get(id).is_some()
    }

    /// Number of distinct chunks received.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no chunk has been received yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reception lag of a chunk (reception − emission), if received.
    pub fn lag_of(&self, id: ChunkId) -> Option<SimDuration> {
        self.get(id)
            .map(|r| r.received_at.saturating_since(r.emitted_at))
    }

    /// Fraction of `emitted` chunks received within `lag` of their emission.
    /// Returns 1.0 for an empty reference set.
    pub fn delivery_ratio_within(&self, emitted: &[Chunk], lag: SimDuration) -> f64 {
        if emitted.is_empty() {
            return 1.0;
        }
        let delivered = emitted
            .iter()
            .filter(|c| match self.get(c.id) {
                Some(r) => r.received_at.saturating_since(c.emitted_at) <= lag,
                None => false,
            })
            .count();
        delivered as f64 / emitted.len() as f64
    }

    /// True if this node views a clear stream at the given lag: at least
    /// `threshold` of the reference chunks arrived within `lag`.
    pub fn views_clear_stream(&self, emitted: &[Chunk], lag: SimDuration, threshold: f64) -> bool {
        self.delivery_ratio_within(emitted, lag) >= threshold
    }
}

impl Serialize for PlayoutBuffer {
    fn to_json_value(&self) -> Value {
        // Same `[[chunk, receipt], ...]` (key-sorted) shape the map rendered.
        Value::Array(
            self.received
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    r.map(|r| {
                        Value::Array(vec![
                            ChunkId::new(self.stream, i as u64).to_json_value(),
                            r.to_json_value(),
                        ])
                    })
                })
                .collect(),
        )
    }
}

impl Deserialize for PlayoutBuffer {}

/// System-wide stream-health series: Figure 1's y-axis over a grid of lags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamHealth {
    /// Lags (x-axis), in seconds.
    pub lag_secs: Vec<f64>,
    /// Fraction of nodes viewing a clear stream at each lag (y-axis).
    pub fraction_clear: Vec<f64>,
}

impl StreamHealth {
    /// Computes the stream-health curve over `lags` for a set of node buffers,
    /// relative to the chunks in `emitted`.
    ///
    /// Each node's per-chunk lags are computed once and sorted, so each grid
    /// point is a binary search instead of a full chunk scan; the delivered
    /// counts (and therefore every fraction) are identical to the naive
    /// per-lag [`delivery_ratio_within`](PlayoutBuffer::delivery_ratio_within)
    /// sweep.
    pub fn compute(
        buffers: &[&PlayoutBuffer],
        emitted: &[Chunk],
        lags: &[SimDuration],
        threshold: f64,
    ) -> StreamHealth {
        if buffers.is_empty() {
            // Vacuously clear: with no nodes observing the stream there is
            // nobody missing it. Reported explicitly as 1.0 rather than
            // dividing by a phantom node (which used to yield 0.0 and read as
            // a total collapse).
            return StreamHealth {
                lag_secs: lags.iter().map(|l| l.as_secs_f64()).collect(),
                fraction_clear: vec![1.0; lags.len()],
            };
        }
        let n = buffers.len() as f64;
        let mut clear_counts = vec![0usize; lags.len()];
        let mut node_lags: Vec<SimDuration> = Vec::new();
        for buffer in buffers {
            if emitted.is_empty() {
                // An empty reference set counts every node as clear.
                for c in &mut clear_counts {
                    *c += 1;
                }
                continue;
            }
            node_lags.clear();
            node_lags.extend(emitted.iter().filter_map(|c| {
                buffer
                    .get(c.id)
                    .map(|r| r.received_at.saturating_since(c.emitted_at))
            }));
            node_lags.sort_unstable();
            for (i, lag) in lags.iter().enumerate() {
                let delivered = node_lags.partition_point(|l| l <= lag);
                if delivered as f64 / emitted.len() as f64 >= threshold {
                    clear_counts[i] += 1;
                }
            }
        }
        StreamHealth {
            lag_secs: lags.iter().map(|l| l.as_secs_f64()).collect(),
            fraction_clear: clear_counts.into_iter().map(|c| c as f64 / n).collect(),
        }
    }

    /// The smallest lag at which at least `target` of the nodes view a clear
    /// stream, if any.
    pub fn lag_for_fraction(&self, target: f64) -> Option<f64> {
        self.lag_secs
            .iter()
            .zip(&self.fraction_clear)
            .find(|(_, frac)| **frac >= target)
            .map(|(lag, _)| *lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(id: u64, emitted_ms: u64) -> Chunk {
        Chunk::new(
            ChunkId::primary(id),
            1_000,
            SimTime::from_millis(emitted_ms),
        )
    }

    #[test]
    fn records_only_first_reception() {
        let mut buf = PlayoutBuffer::new();
        let c = chunk(1, 100);
        assert!(buf.record(&c, SimTime::from_millis(150)));
        assert!(!buf.record(&c, SimTime::from_millis(900)));
        assert_eq!(
            buf.lag_of(ChunkId::primary(1)),
            Some(SimDuration::from_millis(50))
        );
        assert_eq!(buf.len(), 1);
        assert!(buf.contains(ChunkId::primary(1)));
    }

    #[test]
    fn delivery_ratio_counts_only_timely_chunks() {
        let mut buf = PlayoutBuffer::new();
        let chunks: Vec<Chunk> = (0..4).map(|i| chunk(i, i * 100)).collect();
        // Receive chunk 0 promptly, chunk 1 late, chunk 2 never, chunk 3 promptly.
        buf.record(&chunks[0], SimTime::from_millis(50));
        buf.record(&chunks[1], SimTime::from_millis(5_000));
        buf.record(&chunks[3], SimTime::from_millis(350));
        let ratio = buf.delivery_ratio_within(&chunks, SimDuration::from_millis(200));
        assert!((ratio - 0.5).abs() < 1e-12);
        assert!(buf.views_clear_stream(&chunks, SimDuration::from_millis(200), 0.5));
        assert!(!buf.views_clear_stream(&chunks, SimDuration::from_millis(200), 0.99));
        // With a huge lag allowance the late chunk also counts, but not the missing one.
        let ratio = buf.delivery_ratio_within(&chunks, SimDuration::from_secs(10));
        assert!((ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_reference_set_counts_as_clear() {
        let buf = PlayoutBuffer::new();
        assert_eq!(buf.delivery_ratio_within(&[], SimDuration::ZERO), 1.0);
        assert!(buf.is_empty());
    }

    #[test]
    fn zero_node_stream_health_is_vacuously_clear() {
        // Regression: an empty buffer slice used to divide by a phantom node
        // (`len().max(1)`) and report `fraction_clear = 0.0` — a vacuous run
        // masquerading as a total stream collapse.
        let chunks: Vec<Chunk> = (0..4).map(|i| chunk(i, i * 100)).collect();
        let lags = vec![SimDuration::from_millis(500), SimDuration::from_secs(2)];
        let health = StreamHealth::compute(&[], &chunks, &lags, 0.99);
        assert_eq!(health.lag_secs, vec![0.5, 2.0]);
        assert_eq!(health.fraction_clear, vec![1.0, 1.0]);
        // And with no chunks either, still vacuously clear.
        let health = StreamHealth::compute(&[], &[], &lags, 0.99);
        assert_eq!(health.fraction_clear, vec![1.0, 1.0]);
    }

    #[test]
    fn per_stream_buffers_ignore_foreign_chunks() {
        let stream = StreamId::new(2);
        let mut buf = PlayoutBuffer::for_stream(stream);
        assert_eq!(buf.stream(), stream);
        let c = Chunk::new(ChunkId::new(stream, 4), 1_000, SimTime::ZERO);
        assert!(buf.record(&c, SimTime::from_millis(10)));
        assert!(buf.contains(ChunkId::new(stream, 4)));
        // The same index on another stream is a different chunk.
        assert!(!buf.contains(ChunkId::primary(4)));
        assert_eq!(buf.lag_of(ChunkId::primary(4)), None);
    }

    #[test]
    fn stream_health_aggregates_across_nodes() {
        let chunks: Vec<Chunk> = (0..10).map(|i| chunk(i, i * 100)).collect();
        // Node A receives everything immediately; node B receives everything 2 s late.
        let mut a = PlayoutBuffer::new();
        let mut b = PlayoutBuffer::new();
        for c in &chunks {
            a.record(c, c.emitted_at + SimDuration::from_millis(100));
            b.record(c, c.emitted_at + SimDuration::from_secs(2));
        }
        let lags = vec![
            SimDuration::from_millis(500),
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        ];
        let health = StreamHealth::compute(&[&a, &b], &chunks, &lags, 0.99);
        assert_eq!(health.fraction_clear, vec![0.5, 0.5, 1.0]);
        assert_eq!(health.lag_for_fraction(1.0), Some(3.0));
        assert_eq!(health.lag_for_fraction(0.4), Some(0.5));
    }
}
