//! The three-phase gossip state machine (sans-IO).
//!
//! [`GossipNode`] holds everything a node knows about the stream: the chunks
//! it stores, which chunks are "fresh" (received since its last propose phase,
//! grouped by the node that served them), what it offered to whom, and its
//! playout buffer. Its methods implement the propose/request/serve phases and
//! return the data the runtime must put on the wire; they never perform I/O
//! themselves, which keeps the protocol unit-testable without a network.

use std::sync::Arc;

use lifting_sim::collections::DetHashMap;

use lifting_sim::{NodeId, SimDuration, SimTime, StreamId};
use rand::Rng;

use crate::behavior::Behavior;
use crate::buffer::PlayoutBuffer;
use crate::chunk::{Chunk, ChunkId};
use crate::config::GossipConfig;

/// Everything produced by one propose phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposeRound {
    /// The node's gossip-period counter when this round ran.
    pub period: u64,
    /// Chunk ids included in the proposal (identical for every partner, so
    /// the list is shared: the wire payloads, the outstanding offers and the
    /// verification history all reference this one allocation).
    pub chunks: Arc<[ChunkId]>,
    /// The partners the proposal is sent to.
    pub partners: Vec<NodeId>,
    /// For each node that served us chunks included in this proposal, the
    /// chunk ids that came from it. This is what the LiFTinG layer
    /// acknowledges back to the servers (cross-checking, Section 5.2).
    pub by_source: Vec<(NodeId, Vec<ChunkId>)>,
    /// Sources whose chunks were deliberately dropped by the partial-propose
    /// attack (empty for honest nodes); exposed for tests and metrics.
    pub dropped_sources: Vec<NodeId>,
}

/// Internal record of a proposal sent to one partner, kept to validate the
/// subsequent request ("nodes only serve chunks that were effectively
/// proposed").
#[derive(Debug, Clone)]
struct OutstandingOffer {
    /// Period of the proposal; kept for debugging and future pruning policies.
    #[allow(dead_code)]
    period: u64,
    /// Shared with the round that produced the offer (refcount, not copy).
    chunks: Arc<[ChunkId]>,
}

/// Chunk-indexed store: chunk ids are assigned sequentially by the broadcast
/// source, so a flat `Vec` indexed by id replaces hashing entirely on the
/// store/duplicate-check path (the hottest lookups of a run).
#[derive(Debug, Default)]
struct ChunkStore {
    slots: Vec<Option<Chunk>>,
    len: usize,
}

impl ChunkStore {
    #[inline]
    fn contains(&self, id: ChunkId) -> bool {
        matches!(self.slots.get(id.index() as usize), Some(Some(_)))
    }

    #[inline]
    fn get(&self, id: ChunkId) -> Option<Chunk> {
        self.slots.get(id.index() as usize).copied().flatten()
    }

    /// Inserts `chunk`, returning true if it was new.
    fn insert(&mut self, chunk: Chunk) -> bool {
        let idx = chunk.id.index() as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_some() {
            return false;
        }
        self.slots[idx] = Some(chunk);
        self.len += 1;
        true
    }
}

/// Dense bitset over sequential chunk ids (infect-and-die marker).
#[derive(Debug, Default)]
struct ChunkIdSet {
    words: Vec<u64>,
}

impl ChunkIdSet {
    /// Marks `id`, returning true if it was not yet marked.
    fn insert(&mut self, id: ChunkId) -> bool {
        let idx = id.index() as usize;
        let (word, bit) = (idx / 64, idx % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }
}

/// The three-phase gossip protocol state of one node **on one stream**.
///
/// A multi-channel node runs one `GossipNode` per stream it subscribes to:
/// chunk stores, infect-and-die markers, offers and the playout buffer are
/// all plane-local, flat-indexed by the chunk's per-stream sequence number.
#[derive(Debug)]
pub struct GossipNode {
    id: NodeId,
    stream: StreamId,
    config: GossipConfig,
    behavior: Behavior,
    /// All chunks this node holds, flat-indexed by id.
    store: ChunkStore,
    /// Chunks received since the last propose phase, grouped by serving node.
    ///
    /// Deliberately *not* flat-indexed: [`begin_propose_round`] walks this
    /// map while assembling `by_source`, and that (deterministic) hash order
    /// feeds the acknowledgment wire order downstream — the golden digests
    /// pin it bit-for-bit. See the note in `lifting_sim::collections`.
    ///
    /// [`begin_propose_round`]: GossipNode::begin_propose_round
    fresh_by_source: DetHashMap<NodeId, Vec<ChunkId>>,
    /// Chunks already proposed (or deliberately skipped): infect-and-die.
    proposed: ChunkIdSet,
    /// Latest proposal sent to each partner: `(partner id, offer)` pairs
    /// sorted by partner id. A node only ever holds one live offer per
    /// distinct partner it has gossiped with, so this stays O(partners seen);
    /// the earlier partner-id-indexed vector made every node's gossip state
    /// O(world size), an O(n²) memory bill across the population.
    offers_out: Vec<(u32, OutstandingOffer)>,
    /// Per-chunk expiry of an outstanding request, flat-indexed by chunk id;
    /// a chunk counts as requested while its entry is after "now", which
    /// replaces the old map's insert/expire/remove cycle with plain stores
    /// (avoids requesting the same chunk from two proposers in one period).
    requested_until: Vec<SimTime>,
    /// Gossip-period counter (increments every propose phase).
    period: u64,
    /// Playout record for stream-health metrics.
    playout: PlayoutBuffer,
    /// Count of serve messages sent (contribution metric).
    chunks_served: u64,
}

impl GossipNode {
    /// Creates a node's gossip state for the primary stream.
    pub fn new(id: NodeId, config: GossipConfig, behavior: Behavior) -> Self {
        GossipNode::for_stream(id, StreamId::PRIMARY, config, behavior)
    }

    /// Creates a node's gossip state for one plane of a multi-channel stack.
    pub fn for_stream(
        id: NodeId,
        stream: StreamId,
        config: GossipConfig,
        behavior: Behavior,
    ) -> Self {
        config.validate();
        if let Behavior::Freerider(f) = &behavior {
            f.validate();
        }
        GossipNode {
            id,
            stream,
            config,
            behavior,
            store: ChunkStore::default(),
            fresh_by_source: DetHashMap::default(),
            proposed: ChunkIdSet::default(),
            offers_out: Vec::new(),
            requested_until: Vec::new(),
            period: 0,
            playout: PlayoutBuffer::for_stream(stream),
            chunks_served: 0,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The stream this plane disseminates.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The node's behaviour.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// Replaces the node's dissemination behaviour.
    ///
    /// Time-varying adversaries (e.g. an on-off freerider) switch behaviour
    /// between gossip periods through this; the protocol state (store, fresh
    /// chunks, offers) is untouched.
    ///
    /// # Panics
    ///
    /// Panics if the new behaviour embeds an invalid freerider configuration.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        if let Behavior::Freerider(f) = &behavior {
            f.validate();
        }
        self.behavior = behavior;
    }

    /// The protocol configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// The node's playout buffer (stream-health metrics).
    pub fn playout(&self) -> &PlayoutBuffer {
        &self.playout
    }

    /// Number of chunks this node holds.
    pub fn stored_chunks(&self) -> usize {
        self.store.len
    }

    /// Number of chunks this node has served so far (its contribution).
    pub fn chunks_served(&self) -> u64 {
        self.chunks_served
    }

    /// Current gossip-period counter.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Heap bytes held by this plane's gossip state: chunk store slots, the
    /// infect-and-die bitset, outstanding offers, request expiries and the
    /// playout buffer. A deterministic capacity walk (no allocator queries),
    /// so the number is identical across worker counts and shard counts;
    /// shared `Arc` chunk lists are attributed to every holder, making this a
    /// slight over-estimate rather than an audit.
    pub fn estimated_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.store.slots.capacity() * size_of::<Option<Chunk>>()
            + self.proposed.words.capacity() * size_of::<u64>()
            + self.offers_out.capacity() * size_of::<(u32, OutstandingOffer)>()
            + self.requested_until.capacity() * size_of::<SimTime>()
            + self.playout.estimated_heap_bytes();
        bytes += self
            .fresh_by_source
            .capacity()
            .saturating_mul(size_of::<(NodeId, Vec<ChunkId>)>());
        for fresh in self.fresh_by_source.values() {
            bytes += fresh.capacity() * size_of::<ChunkId>();
        }
        for (_, offer) in &self.offers_out {
            bytes += offer.chunks.len() * size_of::<ChunkId>();
        }
        bytes
    }

    /// Number of partners this node will contact in its next propose phase
    /// (honest: `f`; freerider: `(1-δ1)·f` with randomized rounding).
    pub fn desired_fanout<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.behavior.effective_fanout(self.config.fanout, rng)
    }

    /// Injects a chunk produced locally (the broadcast source calls this).
    /// The chunk is recorded as served by the node itself.
    pub fn inject_source_chunk(&mut self, chunk: Chunk, now: SimTime) {
        if !self.store.insert(chunk) {
            return;
        }
        self.playout.record(&chunk, now);
        self.fresh_by_source
            .entry(self.id)
            .or_default()
            .push(chunk.id);
    }

    /// Runs one propose phase at `now` towards the given `partners` (already
    /// selected by the membership layer; their number should come from
    /// [`desired_fanout`]).
    ///
    /// Returns `None` when the node has nothing new to propose or when it is
    /// stretching its gossip period (Section 4.1(iv)); fresh chunks are then
    /// kept for the next phase.
    ///
    /// [`desired_fanout`]: GossipNode::desired_fanout
    pub fn begin_propose_round<R: Rng + ?Sized>(
        &mut self,
        _now: SimTime,
        partners: Vec<NodeId>,
        rng: &mut R,
    ) -> Option<ProposeRound> {
        let this_period = self.period;
        self.period += 1;

        if self.behavior.skips_period(this_period) {
            return None; // gossip-period stretching: fresh chunks accumulate
        }
        if self.fresh_by_source.is_empty() || partners.is_empty() {
            return None;
        }

        let mut chunks: Vec<ChunkId> = Vec::new();
        let mut by_source: Vec<(NodeId, Vec<ChunkId>)> = Vec::new();
        let mut dropped_sources: Vec<NodeId> = Vec::new();

        // NOTE: this must be `take` (fresh table each period), not `drain`
        // (retained capacity): a hash table's iteration order depends on its
        // capacity, and the golden digests pin the order this walk produces.
        let fresh = std::mem::take(&mut self.fresh_by_source);
        for (source, ids) in fresh {
            // Partial-propose attack: drop every chunk that came from a δ2
            // fraction of the serving nodes (dropping whole sources minimizes
            // the number of nodes that can blame the freerider — the paper's
            // footnote 1).
            if source != self.id && self.behavior.drops_source(rng) {
                dropped_sources.push(source);
                // Infect-and-die still applies: the chunks are never proposed.
                for id in ids {
                    self.proposed.insert(id);
                }
                continue;
            }
            let mut kept: Vec<ChunkId> = Vec::with_capacity(ids.len());
            for id in ids {
                if self.proposed.insert(id) {
                    kept.push(id);
                    chunks.push(id);
                }
            }
            if !kept.is_empty() {
                by_source.push((source, kept));
            }
        }

        if chunks.is_empty() {
            return None;
        }
        chunks.sort_unstable();
        chunks.dedup();
        let chunks: Arc<[ChunkId]> = chunks.into();

        for partner in &partners {
            let idx = partner.index() as u32;
            let offer = OutstandingOffer {
                period: this_period,
                chunks: chunks.clone(),
            };
            // Partners repeat across periods; insertion of a new partner is
            // rare, so the sorted pair vector stays cheap to maintain.
            match self.offers_out.binary_search_by_key(&idx, |(i, _)| *i) {
                Ok(pos) => self.offers_out[pos].1 = offer,
                Err(pos) => self.offers_out.insert(pos, (idx, offer)),
            }
        }

        Some(ProposeRound {
            period: this_period,
            chunks,
            partners,
            by_source,
            dropped_sources,
        })
    }

    /// Handles an incoming proposal from `from` and returns the chunk ids to
    /// request (phase 2). Chunks already held or already requested recently
    /// from another proposer are not requested again.
    pub fn on_propose(&mut self, _from: NodeId, chunks: &[ChunkId], now: SimTime) -> Vec<ChunkId> {
        let expiry = now + self.config.gossip_period;
        let mut wanted = Vec::new();
        for id in chunks {
            let idx = id.index() as usize;
            if idx >= self.requested_until.len() {
                self.requested_until.resize(idx + 1, SimTime::ZERO);
            }
            // An entry after "now" is a live reservation; anything else has
            // expired (or never existed) and may be requested again.
            if self.store.contains(*id) || self.requested_until[idx] > now {
                continue;
            }
            self.requested_until[idx] = expiry;
            wanted.push(*id);
        }
        wanted
    }

    /// Handles an incoming request from `from` and returns the chunks to serve
    /// (phase 3). Only chunks that were effectively proposed to `from` are
    /// served; freeriders additionally serve only a `(1-δ3)` fraction.
    pub fn on_request<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        requested: &[ChunkId],
        rng: &mut R,
    ) -> Vec<Chunk> {
        let Ok(pos) = self
            .offers_out
            .binary_search_by_key(&(from.index() as u32), |(i, _)| *i)
        else {
            return Vec::new(); // request without a proposal: ignored
        };
        let offer = &self.offers_out[pos].1;
        let mut valid: Vec<ChunkId> = requested
            .iter()
            .copied()
            .filter(|id| offer.chunks.contains(id))
            .collect();
        valid.dedup();
        let to_serve = self.behavior.effective_serve(valid.len(), rng);
        // Freeriders drop a random subset of the valid requests.
        while valid.len() > to_serve {
            let idx = rng.gen_range(0..valid.len());
            valid.swap_remove(idx);
        }
        let served: Vec<Chunk> = valid.iter().filter_map(|id| self.store.get(*id)).collect();
        self.chunks_served += served.len() as u64;
        served
    }

    /// Handles an incoming serve of `chunk` from `from`. Returns true if the
    /// chunk was new to this node.
    pub fn on_serve(&mut self, from: NodeId, chunk: Chunk, now: SimTime) -> bool {
        if let Some(expiry) = self.requested_until.get_mut(chunk.id.index() as usize) {
            *expiry = SimTime::ZERO; // clear the reservation
        }
        if !self.store.insert(chunk) {
            return false;
        }
        self.playout.record(&chunk, now);
        self.fresh_by_source.entry(from).or_default().push(chunk.id);
        true
    }

    /// The gossip period duration configured for this node (used by the
    /// runtime to schedule the next phase; period-stretching freeriders still
    /// get scheduled every `Tg` but skip phases).
    pub fn gossip_period(&self) -> SimDuration {
        self.config.gossip_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::FreeriderConfig;
    use lifting_sim::derive_rng;

    fn chunk(id: u64) -> Chunk {
        Chunk::new(ChunkId::primary(id), 1_000, SimTime::ZERO)
    }

    fn honest(id: u32) -> GossipNode {
        GossipNode::new(NodeId::new(id), GossipConfig::planetlab(), Behavior::Honest)
    }

    #[test]
    fn three_phase_exchange_moves_a_chunk() {
        let mut rng = derive_rng(1, 0);
        let mut a = honest(0);
        let mut b = honest(1);
        let c = chunk(7);
        a.inject_source_chunk(c, SimTime::ZERO);

        let round = a
            .begin_propose_round(SimTime::ZERO, vec![NodeId::new(1)], &mut rng)
            .expect("a has a fresh chunk");
        assert_eq!(&round.chunks[..], &[ChunkId::primary(7)]);

        let wanted = b.on_propose(NodeId::new(0), &round.chunks, SimTime::from_millis(50));
        assert_eq!(wanted, vec![ChunkId::primary(7)]);

        let served = a.on_request(NodeId::new(1), &wanted, &mut rng);
        assert_eq!(served.len(), 1);
        assert_eq!(a.chunks_served(), 1);

        assert!(b.on_serve(NodeId::new(0), served[0], SimTime::from_millis(100)));
        assert!(b.playout().contains(ChunkId::primary(7)));
        assert_eq!(b.stored_chunks(), 1);
    }

    #[test]
    fn infect_and_die_never_proposes_twice() {
        let mut rng = derive_rng(2, 0);
        let mut a = honest(0);
        a.inject_source_chunk(chunk(1), SimTime::ZERO);
        let first = a
            .begin_propose_round(SimTime::ZERO, vec![NodeId::new(1)], &mut rng)
            .unwrap();
        assert_eq!(&first.chunks[..], &[ChunkId::primary(1)]);
        // No new chunk arrived: the next round proposes nothing.
        assert!(a
            .begin_propose_round(SimTime::from_millis(500), vec![NodeId::new(2)], &mut rng)
            .is_none());
    }

    #[test]
    fn requests_are_ignored_without_a_matching_proposal() {
        let mut rng = derive_rng(3, 0);
        let mut a = honest(0);
        a.inject_source_chunk(chunk(1), SimTime::ZERO);
        // Node 5 was never proposed anything: it gets nothing.
        let served = a.on_request(NodeId::new(5), &[ChunkId::primary(1)], &mut rng);
        assert!(served.is_empty());
    }

    #[test]
    fn only_proposed_chunks_are_served() {
        let mut rng = derive_rng(4, 0);
        let mut a = honest(0);
        a.inject_source_chunk(chunk(1), SimTime::ZERO);
        a.inject_source_chunk(chunk(2), SimTime::ZERO);
        let round = a
            .begin_propose_round(SimTime::ZERO, vec![NodeId::new(1)], &mut rng)
            .unwrap();
        assert_eq!(round.chunks.len(), 2);
        // Partner asks for a chunk that was never proposed (id 99): ignored.
        let served = a.on_request(
            NodeId::new(1),
            &[ChunkId::primary(1), ChunkId::primary(99)],
            &mut rng,
        );
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].id, ChunkId::primary(1));
    }

    #[test]
    fn duplicate_serves_are_not_double_counted() {
        let mut b = honest(1);
        let c = chunk(3);
        assert!(b.on_serve(NodeId::new(0), c, SimTime::from_millis(10)));
        assert!(!b.on_serve(NodeId::new(2), c, SimTime::from_millis(20)));
        assert_eq!(b.stored_chunks(), 1);
    }

    #[test]
    fn chunks_are_not_requested_twice_within_a_period() {
        let mut b = honest(1);
        let wanted1 = b.on_propose(NodeId::new(0), &[ChunkId::primary(5)], SimTime::ZERO);
        let wanted2 = b.on_propose(
            NodeId::new(2),
            &[ChunkId::primary(5)],
            SimTime::from_millis(100),
        );
        assert_eq!(wanted1, vec![ChunkId::primary(5)]);
        assert!(wanted2.is_empty(), "already requested from node 0");
        // After the reservation expires the chunk can be requested again.
        let wanted3 = b.on_propose(
            NodeId::new(3),
            &[ChunkId::primary(5)],
            SimTime::from_secs(2),
        );
        assert_eq!(wanted3, vec![ChunkId::primary(5)]);
    }

    #[test]
    fn freerider_reduces_fanout_and_serves_partially() {
        let mut rng = derive_rng(5, 0);
        let cfg = FreeriderConfig::planetlab();
        let mut f = GossipNode::new(
            NodeId::new(0),
            GossipConfig::planetlab(),
            Behavior::Freerider(cfg),
        );
        assert_eq!(f.desired_fanout(&mut rng), 6);
        for i in 0..10 {
            f.inject_source_chunk(chunk(i), SimTime::ZERO);
        }
        let round = f
            .begin_propose_round(SimTime::ZERO, vec![NodeId::new(1)], &mut rng)
            .unwrap();
        // δ3 = 0.1: over many requests of 10 chunks, roughly 9 are served.
        let mut total = 0usize;
        for _ in 0..200 {
            total += f.on_request(NodeId::new(1), &round.chunks, &mut rng).len();
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 9.0).abs() < 0.4, "mean served {mean}");
    }

    #[test]
    fn partial_propose_drops_whole_sources() {
        let mut rng = derive_rng(6, 0);
        let cfg = FreeriderConfig {
            delta1: 0.0,
            delta2: 1.0, // always drop
            delta3: 0.0,
            period_stretch: 1,
        };
        let mut f = GossipNode::new(
            NodeId::new(0),
            GossipConfig::planetlab(),
            Behavior::Freerider(cfg),
        );
        // Chunks served by node 9 are dropped from the proposal entirely.
        assert!(f.on_serve(NodeId::new(9), chunk(1), SimTime::ZERO));
        assert!(f.on_serve(NodeId::new(9), chunk(2), SimTime::ZERO));
        let round = f.begin_propose_round(SimTime::ZERO, vec![NodeId::new(1)], &mut rng);
        assert!(round.is_none(), "everything was dropped");
        // And infect-and-die means they are gone for good.
        assert!(f
            .begin_propose_round(SimTime::from_millis(500), vec![NodeId::new(1)], &mut rng)
            .is_none());
    }

    #[test]
    fn period_stretching_skips_phases_but_accumulates_chunks() {
        let mut rng = derive_rng(7, 0);
        let cfg = FreeriderConfig {
            delta1: 0.0,
            delta2: 0.0,
            delta3: 0.0,
            period_stretch: 2,
        };
        let mut f = GossipNode::new(
            NodeId::new(0),
            GossipConfig::planetlab(),
            Behavior::Freerider(cfg),
        );
        f.inject_source_chunk(chunk(1), SimTime::ZERO);
        // Period 0 proposes (0 % 2 == 0), period 1 skips, period 2 proposes again.
        assert!(f
            .begin_propose_round(SimTime::ZERO, vec![NodeId::new(1)], &mut rng)
            .is_some());
        f.inject_source_chunk(chunk(2), SimTime::from_millis(600));
        assert!(f
            .begin_propose_round(SimTime::from_millis(500), vec![NodeId::new(1)], &mut rng)
            .is_none());
        f.inject_source_chunk(chunk(3), SimTime::from_millis(900));
        let round = f
            .begin_propose_round(SimTime::from_millis(1000), vec![NodeId::new(1)], &mut rng)
            .unwrap();
        assert_eq!(
            round.chunks.len(),
            2,
            "accumulated chunks are proposed together"
        );
    }

    #[test]
    fn propose_round_tracks_sources_for_acknowledgements() {
        let mut rng = derive_rng(8, 0);
        let mut b = honest(1);
        assert!(b.on_serve(NodeId::new(10), chunk(1), SimTime::ZERO));
        assert!(b.on_serve(NodeId::new(10), chunk(2), SimTime::ZERO));
        assert!(b.on_serve(NodeId::new(20), chunk(3), SimTime::ZERO));
        let round = b
            .begin_propose_round(SimTime::from_millis(500), vec![NodeId::new(2)], &mut rng)
            .unwrap();
        assert_eq!(round.chunks.len(), 3);
        let mut sources: Vec<NodeId> = round.by_source.iter().map(|(s, _)| *s).collect();
        sources.sort();
        assert_eq!(sources, vec![NodeId::new(10), NodeId::new(20)]);
        let from_10 = round
            .by_source
            .iter()
            .find(|(s, _)| *s == NodeId::new(10))
            .map(|(_, ids)| ids.clone())
            .unwrap();
        assert_eq!(from_10.len(), 2);
    }
}
