//! Wire messages of the three-phase protocol and their size model.
//!
//! Sizes matter because Table 5 of the paper reports bandwidth overhead
//! ratios. We model application-level payload sizes (the transport headers
//! are added by `lifting-net`): 8 bytes per chunk identifier, 6 bytes per node
//! identifier (IPv4 + port, as on PlanetLab) and a small fixed header per
//! message.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::chunk::{Chunk, ChunkId};

/// Fixed application-level header of every gossip message (message type,
/// sender identity, period number).
pub const MESSAGE_HEADER_BYTES: u64 = 16;
/// Wire size of one chunk identifier.
pub const CHUNK_ID_BYTES: u64 = 8;
/// Wire size of one node identifier (IPv4 address + port).
pub const NODE_ID_BYTES: u64 = 6;

/// A propose message: the chunk ids received since the last propose phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProposePayload {
    /// The proposer's gossip-period counter (used by receivers to order
    /// proposals; not trusted by any verification).
    pub period: u64,
    /// Chunk ids on offer. Shared, not owned: one propose phase sends the
    /// identical list to `f` partners, each receiver's history keeps it, and
    /// the proposer's outstanding offers reference it — all one allocation.
    pub chunks: Arc<[ChunkId]>,
}

/// A request message: the subset of proposed chunks the receiver needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestPayload {
    /// Chunk ids requested (shared with the requester's pending serve check).
    pub chunks: Arc<[ChunkId]>,
}

/// A serve message carrying one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServePayload {
    /// The chunk being served (payload modelled by its size).
    pub chunk: Chunk,
}

/// Any message of the three-phase gossip protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GossipMessage {
    /// Phase 1: propose chunk ids to a partner.
    Propose(ProposePayload),
    /// Phase 2: request needed chunks from the proposer.
    Request(RequestPayload),
    /// Phase 3: serve one requested chunk.
    Serve(ServePayload),
}

impl GossipMessage {
    /// Application-level payload size of the message in bytes.
    pub fn wire_size(&self) -> u64 {
        match self {
            GossipMessage::Propose(p) => {
                MESSAGE_HEADER_BYTES + CHUNK_ID_BYTES * p.chunks.len() as u64
            }
            GossipMessage::Request(r) => {
                MESSAGE_HEADER_BYTES + CHUNK_ID_BYTES * r.chunks.len() as u64
            }
            GossipMessage::Serve(s) => {
                MESSAGE_HEADER_BYTES + CHUNK_ID_BYTES + s.chunk.size_bytes as u64
            }
        }
    }

    /// True for serve messages (the only ones carrying stream data).
    pub fn carries_data(&self) -> bool {
        matches!(self, GossipMessage::Serve(_))
    }

    /// The stream this message belongs to, derived from the chunk identities
    /// it carries (a stream id needs no wire bytes of its own: it is packed
    /// into every chunk id). `None` only for a degenerate empty proposal or
    /// request, which the protocol never sends.
    pub fn stream(&self) -> Option<lifting_sim::StreamId> {
        match self {
            GossipMessage::Propose(p) => p.chunks.first().map(|c| c.stream()),
            GossipMessage::Request(r) => r.chunks.first().map(|c| c.stream()),
            GossipMessage::Serve(s) => Some(s.chunk.id.stream()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::SimTime;

    #[test]
    fn wire_sizes_scale_with_content() {
        let propose = GossipMessage::Propose(ProposePayload {
            period: 3,
            chunks: vec![
                ChunkId::primary(1),
                ChunkId::primary(2),
                ChunkId::primary(3),
            ]
            .into(),
        });
        assert_eq!(propose.wire_size(), 16 + 3 * 8);
        assert!(!propose.carries_data());

        let request = GossipMessage::Request(RequestPayload {
            chunks: vec![ChunkId::primary(1)].into(),
        });
        assert_eq!(request.wire_size(), 16 + 8);

        let serve = GossipMessage::Serve(ServePayload {
            chunk: Chunk::new(ChunkId::primary(9), 4_096, SimTime::ZERO),
        });
        assert_eq!(serve.wire_size(), 16 + 8 + 4_096);
        assert!(serve.carries_data());
    }

    #[test]
    fn empty_proposal_is_just_a_header() {
        let propose = GossipMessage::Propose(ProposePayload {
            period: 0,
            chunks: vec![].into(),
        });
        assert_eq!(propose.wire_size(), MESSAGE_HEADER_BYTES);
    }
}
