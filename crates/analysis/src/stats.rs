//! Plain statistics utilities used by the experiments: summary statistics,
//! histograms (the pdf plots of Figures 10, 11a and 13) and empirical CDFs
//! (Figures 11b and 14).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `values`. Returns a zeroed summary for
    /// an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` using linear
/// interpolation between order statistics. Returns `None` for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile {q} not in [0, 1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let w = pos - lo as f64;
        Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// Empirical cumulative distribution function evaluated at each point of
/// `grid`: the fraction of `values` that are ≤ the grid point.
pub fn ecdf(values: &[f64], grid: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; grid.len()];
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    grid.iter()
        .map(|&x| {
            let count = sorted.partition_point(|v| *v <= x);
            count as f64 / sorted.len() as f64
        })
        .collect()
}

/// A fixed-width histogram over a closed range, producing the "fraction of
/// nodes" densities plotted in the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((value - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every observation in `values`.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * width)
            .collect()
    }

    /// The fraction of all observations falling in each bin (the paper's
    /// "fraction of nodes" y-axis).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased std dev of this classic sample is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn ecdf_is_monotone_and_normalized() {
        let values = [1.0, 2.0, 2.0, 3.0, 10.0];
        let grid = [0.0, 1.0, 2.0, 5.0, 10.0];
        let cdf = ecdf(&values, &grid);
        assert_eq!(cdf, vec![0.0, 0.2, 0.6, 0.8, 1.0]);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn histogram_bins_and_fractions() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.6, 9.9, -1.0, 10.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        let fr = h.fractions();
        assert!((fr[1] - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.centers()[0], 0.5);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
