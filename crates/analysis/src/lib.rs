//! Analytical companion of the LiFTinG reproduction.
//!
//! This crate contains the mathematics of Section 6 of the paper — nothing in
//! here touches the simulator. It provides:
//!
//! * the closed-form expectations of wrongful blames caused by message losses
//!   (Equations 2–5) and of the blames applied to freeriders as a function of
//!   their degree of freeriding `Δ = (δ1, δ2, δ3)` ([`formulas`]),
//! * the Bienaymé–Tchebychev bounds on the probability of detection `α` and of
//!   false positives `β` (Section 6.3.1),
//! * Shannon entropy, Kullback–Leibler divergence, the collusion-bias entropy
//!   of Equation 7 and its numerical inversion giving the maximal undetectable
//!   bias `p*m` (Section 6.3.2) ([`entropy`]),
//! * an analysis-level Monte-Carlo model of the per-period blames, used to
//!   regenerate Figures 10–12 exactly the way the paper's own simulations do
//!   ([`montecarlo`]),
//! * plain statistics utilities (histograms, CDFs, summaries) and a small
//!   two-component Gaussian mixture fitter used as an ablation of the paper's
//!   fixed-threshold detector ([`stats`], [`mixture`], [`detection`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detection;
pub mod entropy;
pub mod formulas;
pub mod mixture;
pub mod montecarlo;
pub mod stats;

pub use detection::{
    calibrate_threshold, calibrate_threshold_trimmed, detection_rate, false_positive_rate,
    robust_outlier_threshold,
};
pub use entropy::{
    calibrate_gamma, collusion_entropy, kl_divergence, max_entropy, max_undetectable_bias,
    shannon_entropy, shannon_entropy_of_counts, uniform_selection_entropy,
};
pub use formulas::{FreeridingDegree, ProtocolParams};
pub use mixture::GaussianMixture;
pub use montecarlo::{BlameModel, ScoreSamples};
pub use stats::{ecdf, Histogram, Summary};
