//! Closed-form expressions of Section 6 of the paper.
//!
//! All formulas are expressed in terms of the protocol parameters gathered in
//! [`ProtocolParams`] (fanout `f`, number of requested chunks `|R|`, message
//! reception probability `pr`) and, for freeriders, of the degree of
//! freeriding [`FreeridingDegree`].

use serde::{Deserialize, Serialize};

/// Degree of freeriding `Δ = (δ1, δ2, δ3)` (Section 6.3.1).
///
/// Each component is the *fraction by which the freerider decreases* the
/// corresponding contribution:
///
/// * `δ1` — fanout decrease: the node contacts `(1-δ1)·f` partners,
/// * `δ2` — partial propose: chunks received from a fraction `δ2` of the nodes
///   that served it are not proposed further,
/// * `δ3` — partial serve: only `(1-δ3)·|R|` of the requested chunks are served.
///
/// The paper's PlanetLab experiment uses `Δ = (1/7, 0.1, 0.1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeridingDegree {
    /// Fanout decrease fraction, in `[0, 1]`.
    pub delta1: f64,
    /// Partial-propose fraction, in `[0, 1]`.
    pub delta2: f64,
    /// Partial-serve fraction, in `[0, 1]`.
    pub delta3: f64,
}

impl FreeridingDegree {
    /// An honest node: no deviation at all.
    pub const HONEST: FreeridingDegree = FreeridingDegree {
        delta1: 0.0,
        delta2: 0.0,
        delta3: 0.0,
    };

    /// Creates a degree of freeriding, validating the range of each component.
    ///
    /// # Panics
    ///
    /// Panics if any component is outside `[0, 1]`.
    pub fn new(delta1: f64, delta2: f64, delta3: f64) -> Self {
        for (name, v) in [("delta1", delta1), ("delta2", delta2), ("delta3", delta3)] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} not in [0, 1]");
        }
        FreeridingDegree {
            delta1,
            delta2,
            delta3,
        }
    }

    /// The uniform degree `δ1 = δ2 = δ3 = δ` used for Figure 12.
    pub fn uniform(delta: f64) -> Self {
        FreeridingDegree::new(delta, delta, delta)
    }

    /// The degree used in the paper's PlanetLab deployment (Section 7.1):
    /// `fˆ = 6` out of `f = 7` (δ1 = 1/7), propose 90 % (δ2 = 0.1), serve 90 %
    /// (δ3 = 0.1).
    pub fn planetlab() -> Self {
        FreeridingDegree::new(1.0 / 7.0, 0.1, 0.1)
    }

    /// Upload-bandwidth gain of the freerider (Section 6.3.1):
    /// `1 - (1-δ1)(1-δ2)(1-δ3)`.
    pub fn gain(&self) -> f64 {
        1.0 - (1.0 - self.delta1) * (1.0 - self.delta2) * (1.0 - self.delta3)
    }

    /// True if all components are zero.
    pub fn is_honest(&self) -> bool {
        self.delta1 == 0.0 && self.delta2 == 0.0 && self.delta3 == 0.0
    }
}

impl Default for FreeridingDegree {
    fn default() -> Self {
        FreeridingDegree::HONEST
    }
}

/// Protocol parameters entering the closed forms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// Fanout `f`: number of partners per propose phase.
    pub fanout: usize,
    /// `|R|`: number of chunks requested per proposal (assumed constant in the
    /// analysis, Section 6.2).
    pub requested: usize,
    /// Reception probability `pr = 1 - pl`.
    pub pr: f64,
}

impl ProtocolParams {
    /// Creates protocol parameters.
    ///
    /// # Panics
    ///
    /// Panics if `pr` is not in `[0, 1]` or if `fanout`/`requested` are zero.
    pub fn new(fanout: usize, requested: usize, pr: f64) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        assert!(requested > 0, "requested chunk count must be positive");
        assert!((0.0..=1.0).contains(&pr), "pr = {pr} not in [0, 1]");
        ProtocolParams {
            fanout,
            requested,
            pr,
        }
    }

    /// The parameters of the paper's Monte-Carlo simulations (Figures 10–11):
    /// `f = 12`, `|R| = 4`, `pl = 7 %`.
    pub fn simulation_defaults() -> Self {
        ProtocolParams::new(12, 4, 0.93)
    }

    /// The parameters of the paper's PlanetLab deployment (Figure 14):
    /// `f = 7`, `|R| = 4`, observed loss 4 %.
    pub fn planetlab_defaults() -> Self {
        ProtocolParams::new(7, 4, 0.96)
    }

    fn f(&self) -> f64 {
        self.fanout as f64
    }

    /// Expected wrongful blame from **direct verification** per gossip period
    /// (Equation 2): `b̃_dv = pr·(1 - pr²)·f²`.
    pub fn expected_blame_direct_verification(&self) -> f64 {
        let pr = self.pr;
        pr * (1.0 - pr * pr) * self.f() * self.f()
    }

    /// Expected wrongful blame from **direct cross-checking** per gossip
    /// period (Equation 3): `b̃_dcc = pr²·(1 - pr^(|R|+4))·f²`.
    pub fn expected_blame_cross_checking(&self) -> f64 {
        let pr = self.pr;
        pr * pr * (1.0 - pr.powi(self.requested as i32 + 4)) * self.f() * self.f()
    }

    /// Expected wrongful blame from the **a-posteriori cross-check** over a
    /// history of `nh` gossip periods (Equation 4): `b̃_apcc = (1 - pr)·nh·f`.
    pub fn expected_blame_a_posteriori(&self, history_periods: usize) -> f64 {
        (1.0 - self.pr) * history_periods as f64 * self.f()
    }

    /// Total expected wrongful blame per gossip period applied to an honest
    /// node (Equation 5): `b̃ = pr·(1 + pr - pr² - pr^(|R|+5))·f²`.
    ///
    /// This is the amount by which LiFTinG periodically *compensates* scores
    /// so honest nodes average zero.
    pub fn expected_wrongful_blame(&self) -> f64 {
        let pr = self.pr;
        pr * (1.0 + pr - pr * pr - pr.powi(self.requested as i32 + 5)) * self.f() * self.f()
    }

    /// Expected blame per gossip period applied to a freerider of degree `Δ`
    /// (Section 6.3.1, expression for `b̃'(Δ)`):
    ///
    /// ```text
    /// b̃'(Δ) = (1-δ1)·pr·(1 - pr²(1-δ3))·f²
    ///        + δ2·f²
    ///        + (1-δ2)·pr²·[ pr^(|R|+1)·(1 - pr³(1-δ1)) + (1 - pr^(|R|+1)) ]·f²
    /// ```
    ///
    /// For `Δ = (0,0,0)` this reduces to [`expected_wrongful_blame`].
    ///
    /// [`expected_wrongful_blame`]: ProtocolParams::expected_wrongful_blame
    pub fn expected_blame_freerider(&self, delta: FreeridingDegree) -> f64 {
        let pr = self.pr;
        let f2 = self.f() * self.f();
        let pr_r1 = pr.powi(self.requested as i32 + 1);
        let term_dv = (1.0 - delta.delta1) * pr * (1.0 - pr * pr * (1.0 - delta.delta3)) * f2;
        let term_dropped = delta.delta2 * f2;
        let term_dcc = (1.0 - delta.delta2)
            * pr
            * pr
            * (pr_r1 * (1.0 - pr.powi(3) * (1.0 - delta.delta1)) + (1.0 - pr_r1))
            * f2;
        term_dv + term_dropped + term_dcc
    }

    /// Expected *excess* blame of a freerider relative to an honest node, i.e.
    /// the expected normalized score drift per period (negated): after
    /// compensation, an honest node's score drifts by 0 per period while a
    /// freerider's drifts by `-(b̃'(Δ) - b̃)`.
    pub fn expected_excess_blame(&self, delta: FreeridingDegree) -> f64 {
        self.expected_blame_freerider(delta) - self.expected_wrongful_blame()
    }

    /// Upper bound on the probability of a false positive after `r` gossip
    /// periods, for detection threshold `η < 0` (Section 6.3.1):
    /// `β ≤ σ(b)² / (r·η²)`.
    pub fn false_positive_bound(&self, sigma_b: f64, periods: usize, eta: f64) -> f64 {
        assert!(eta < 0.0, "detection threshold must be negative");
        (sigma_b * sigma_b / (periods as f64 * eta * eta)).min(1.0)
    }

    /// Lower bound on the probability of detecting a freerider of degree `Δ`
    /// after `r` gossip periods (Section 6.3.1):
    /// `α ≥ 1 - σ(b'(Δ))² / (r·(b̃'(Δ) - b̃ + η)²)` — the freerider's expected
    /// normalized score is `-(b̃'(Δ) - b̃)` and it is detected when the score
    /// drops below `η`.
    ///
    /// Returns 0 when the freerider's expected score is above the threshold
    /// (Chebyshev gives no guarantee in that regime).
    pub fn detection_bound(
        &self,
        delta: FreeridingDegree,
        sigma_b_freerider: f64,
        periods: usize,
        eta: f64,
    ) -> f64 {
        assert!(eta < 0.0, "detection threshold must be negative");
        let drift = self.expected_excess_blame(delta);
        let margin = drift + eta; // distance between E[s] = -drift and η
        if margin <= 0.0 {
            return 0.0;
        }
        (1.0 - sigma_b_freerider * sigma_b_freerider / (periods as f64 * margin * margin)).max(0.0)
    }

    /// Maximum number of verification/blame messages per gossip period
    /// (Table 3): messages sent by a node in its verifier role for direct
    /// cross-checking, `pdcc·f²`, plus replies as a witness `pdcc·f²`, plus
    /// acknowledgements `f`, plus blames to managers `O(M·f)`.
    pub fn verification_message_bound(&self, pdcc: f64, managers: usize) -> f64 {
        let f = self.f();
        pdcc * f * f // confirm requests sent as verifier
            + pdcc * f * f // confirm responses sent as witness
            + f // acks sent to the nodes that served us
            + (1.0 + pdcc) * managers as f64 * f // direct-verification + cross-check blames
    }

    /// Number of messages sent per gossip period by the three-phase protocol
    /// itself, `f·(2 + |R|)` (Section 6.1).
    pub fn gossip_message_count(&self) -> f64 {
        self.f() * (2.0 + self.requested as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn gain_formula_matches_paper_examples() {
        // Section 6.3.1: gain of 10 % is achieved for δ ≈ 0.035.
        let g = FreeridingDegree::uniform(0.035).gain();
        assert!(close(g, 0.101, 0.005), "gain {g}");
        // PlanetLab freeriders decrease contribution by about 30 %.
        let g = FreeridingDegree::planetlab().gain();
        assert!(close(g, 0.3, 0.01), "gain {g}");
        assert_eq!(FreeridingDegree::HONEST.gain(), 0.0);
    }

    #[test]
    fn honest_expectation_matches_figure_10_value() {
        // Figure 10: f = 12, |R| = 4, pl = 7 % ⇒ b̃ = 72.95.
        let p = ProtocolParams::simulation_defaults();
        let b = p.expected_wrongful_blame();
        assert!(close(b, 72.95, 0.05), "b̃ = {b}");
    }

    #[test]
    fn component_expectations_sum_to_total() {
        let p = ProtocolParams::new(12, 4, 0.93);
        let total = p.expected_blame_direct_verification() + p.expected_blame_cross_checking();
        assert!(close(total, p.expected_wrongful_blame(), 1e-9));
    }

    #[test]
    fn freerider_expectation_reduces_to_honest_for_zero_delta() {
        let p = ProtocolParams::new(7, 4, 0.96);
        let b_honest = p.expected_wrongful_blame();
        let b_zero = p.expected_blame_freerider(FreeridingDegree::HONEST);
        assert!(close(b_honest, b_zero, 1e-9));
        assert!(close(
            p.expected_excess_blame(FreeridingDegree::HONEST),
            0.0,
            1e-9
        ));
    }

    #[test]
    fn freerider_blame_increases_with_each_delta() {
        let p = ProtocolParams::new(12, 4, 0.93);
        let base = p.expected_blame_freerider(FreeridingDegree::HONEST);
        for d in [
            FreeridingDegree::new(0.2, 0.0, 0.0),
            FreeridingDegree::new(0.0, 0.2, 0.0),
            FreeridingDegree::new(0.0, 0.0, 0.2),
        ] {
            assert!(
                p.expected_blame_freerider(d) > base,
                "expected blame should increase for {d:?}"
            );
        }
    }

    #[test]
    fn a_posteriori_blame_is_linear_in_history() {
        let p = ProtocolParams::new(12, 4, 0.9);
        let b50 = p.expected_blame_a_posteriori(50);
        let b100 = p.expected_blame_a_posteriori(100);
        assert!(close(b100, 2.0 * b50, 1e-9));
        assert!(close(b50, 0.1 * 50.0 * 12.0, 1e-9));
    }

    #[test]
    fn no_loss_means_no_wrongful_blame() {
        let p = ProtocolParams::new(7, 4, 1.0);
        assert!(close(p.expected_wrongful_blame(), 0.0, 1e-12));
        assert!(close(p.expected_blame_direct_verification(), 0.0, 1e-12));
        assert!(close(p.expected_blame_cross_checking(), 0.0, 1e-12));
        assert!(close(p.expected_blame_a_posteriori(50), 0.0, 1e-12));
    }

    #[test]
    fn chebyshev_bounds_behave_monotonically() {
        let p = ProtocolParams::simulation_defaults();
        let beta_10 = p.false_positive_bound(25.6, 10, -9.75);
        let beta_50 = p.false_positive_bound(25.6, 50, -9.75);
        assert!(beta_50 < beta_10, "β bound must shrink with time");

        let d = FreeridingDegree::uniform(0.1);
        let alpha_10 = p.detection_bound(d, 30.0, 10, -9.75);
        let alpha_50 = p.detection_bound(d, 30.0, 50, -9.75);
        assert!(alpha_50 >= alpha_10, "α bound must grow with time");
        assert!(
            alpha_50 > 0.9,
            "strong freeriding must be detected: {alpha_50}"
        );
    }

    #[test]
    fn detection_bound_is_zero_when_drift_is_below_threshold() {
        let p = ProtocolParams::simulation_defaults();
        // Tiny deviation: expected score stays above η ⇒ bound degenerates to 0.
        let d = FreeridingDegree::uniform(0.001);
        assert_eq!(p.detection_bound(d, 20.0, 50, -50.0), 0.0);
    }

    #[test]
    fn message_bounds_match_section_6_1() {
        let p = ProtocolParams::new(7, 4, 0.96);
        assert!(close(p.gossip_message_count(), 7.0 * 6.0, 1e-12));
        // With pdcc = 0 only acks and direct-verification blames remain.
        let m0 = p.verification_message_bound(0.0, 25);
        assert!(close(m0, 7.0 + 25.0 * 7.0, 1e-9));
        let m1 = p.verification_message_bound(1.0, 25);
        assert!(m1 > m0);
    }

    #[test]
    #[should_panic]
    fn invalid_delta_panics() {
        let _ = FreeridingDegree::new(1.2, 0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn positive_threshold_panics() {
        let p = ProtocolParams::simulation_defaults();
        let _ = p.false_positive_bound(25.0, 10, 1.0);
    }
}
