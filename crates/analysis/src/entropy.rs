//! Entropy-based statistical verification (Section 5.3 and 6.3.2).
//!
//! The local history audit measures the Shannon entropy of the empirical
//! distribution of a node's past partners (its fanout multiset `Fh`) and of
//! the nodes that served it (its fanin multiset `F'h`). A uniform random
//! selection maximizes entropy; colluders biasing their selection towards a
//! small coalition depress it. Equation 7 of the paper relates the detection
//! threshold `γ`, the coalition size `m'`, and the maximal bias `p*m` a
//! freerider can apply without being caught.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy (base 2) of an empirical distribution given as item counts.
///
/// Items with zero count contribute nothing. Returns 0 for an empty multiset.
pub fn shannon_entropy_of_counts<I: IntoIterator<Item = u64>>(counts: I) -> f64 {
    let mut counts: Vec<u64> = counts.into_iter().filter(|c| *c > 0).collect();
    // Callers often hand over hash-map values, whose order varies from run to
    // run; floating-point addition is not associative, so fix the summation
    // order to keep every entropy bit-identical across runs.
    counts.sort_unstable();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Shannon entropy (base 2) of the empirical distribution of a multiset of
/// items (Equation 1 of the paper, with `d̃` the normalized occurrence
/// counts).
pub fn shannon_entropy<T: Eq + Hash, I: IntoIterator<Item = T>>(items: I) -> f64 {
    let mut counts: HashMap<T, u64> = HashMap::new();
    for item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    shannon_entropy_of_counts(counts.into_values())
}

/// The maximum entropy reachable by a history of `len` entries: `log2(len)`,
/// attained when every entry is distinct (paper, Section 5.3, assuming
/// `nh·f < n`).
pub fn max_entropy(len: usize) -> f64 {
    if len == 0 {
        0.0
    } else {
        (len as f64).log2()
    }
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits between two discrete
/// distributions given as (unnormalized) weights over the same support.
///
/// Entries where `p = 0` contribute nothing; entries where `p > 0` but `q = 0`
/// make the divergence infinite.
///
/// # Panics
///
/// Panics if the slices have different lengths or if either sums to zero.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must not be empty");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pi = pi / sp;
        let qi = qi / sq;
        if pi > 0.0 {
            if qi == 0.0 {
                return f64::INFINITY;
            }
            d += pi * (pi / qi).log2();
        }
    }
    d.max(0.0)
}

/// Entropy of a freerider's fanout history when it picks colluders with
/// probability `pm` and honest nodes with probability `1 - pm`, both uniformly
/// within their class (Equation 7 of the paper):
///
/// ```text
/// H = -pm·log2(pm / m') - (1 - pm)·log2((1 - pm) / (nh·f - m'))
/// ```
///
/// `history_len` is `nh·f` (the number of entries in the history) and
/// `colluders` is `m'`.
///
/// # Panics
///
/// Panics if `pm` is outside `[0, 1]`, if `colluders == 0`, or if
/// `history_len <= colluders`.
pub fn collusion_entropy(pm: f64, colluders: usize, history_len: usize) -> f64 {
    assert!((0.0..=1.0).contains(&pm), "pm = {pm} not in [0, 1]");
    assert!(colluders > 0, "coalition must be non-empty");
    assert!(
        history_len > colluders,
        "history must be larger than the coalition (nh·f >> m')"
    );
    let m = colluders as f64;
    let rest = (history_len - colluders) as f64;
    let mut h = 0.0;
    if pm > 0.0 {
        h -= pm * (pm / m).log2();
    }
    if pm < 1.0 {
        h -= (1.0 - pm) * ((1.0 - pm) / rest).log2();
    }
    h
}

/// Simulates the entropy of an honest node's history: `samples` histories of
/// `entries` partners drawn uniformly at random from a population of
/// `population` nodes, returning one entropy value per history.
///
/// The paper (Section 6.3.2, Figure 13) estimates the distribution of the
/// honest-history entropy by simulation and places the threshold `γ` just
/// below its observed minimum; this function is that simulation.
pub fn uniform_selection_entropy(
    entries: usize,
    population: usize,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    (0..samples)
        .map(|_| {
            let mut counts = std::collections::HashMap::with_capacity(entries);
            for _ in 0..entries {
                *counts.entry(rng.gen_range(0..population)).or_insert(0u64) += 1;
            }
            shannon_entropy_of_counts(counts.into_values())
        })
        .collect()
}

/// Calibrates the entropy threshold `γ` for a deployment where honest
/// histories contain `entries` partners drawn from `population` nodes: the
/// threshold is placed `margin` bits below the minimum entropy observed over
/// `samples` simulated honest histories, so that honest nodes are essentially
/// never expelled by the entropy check.
///
/// With the paper's setting (`entries = 600`, `population = 10,000`) and a
/// margin of ≈ 0.15 bits this reproduces the paper's `γ = 8.95`.
pub fn calibrate_gamma(
    entries: usize,
    population: usize,
    samples: usize,
    margin: f64,
    seed: u64,
) -> f64 {
    let entropies = uniform_selection_entropy(entries, population, samples, seed);
    let min = entropies
        .into_iter()
        .fold(f64::INFINITY, f64::min)
        .min(max_entropy(entries));
    (min - margin).max(0.0)
}

/// Numerically inverts [`collusion_entropy`] to find the maximal bias `p*m`
/// a freerider colluding with `colluders` nodes can apply while keeping the
/// entropy of its history at or above the threshold `gamma` (Section 6.3.2).
///
/// Returns the largest `pm ∈ [m'/(nh·f), 1]` such that
/// `collusion_entropy(pm) ≥ gamma`, or `None` if even the unbiased selection
/// falls below the threshold (i.e. `gamma` is unreachably high).
pub fn max_undetectable_bias(gamma: f64, colluders: usize, history_len: usize) -> Option<f64> {
    // Under uniform selection the expected fraction of colluders in the
    // history is m'/(nh·f); biases below that are meaningless.
    let baseline = colluders as f64 / history_len as f64;
    let entropy_at = |pm: f64| collusion_entropy(pm, colluders, history_len);
    if entropy_at(baseline) < gamma {
        return None;
    }
    // The entropy is decreasing in pm on [baseline, 1] (more bias, less
    // entropy), so a bisection finds the crossing point.
    let mut lo = baseline;
    let mut hi = 1.0;
    if entropy_at(hi) >= gamma {
        return Some(1.0);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if entropy_at(mid) >= gamma {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn entropy_of_uniform_multiset_is_log2_n() {
        let items: Vec<u32> = (0..600).collect();
        let h = shannon_entropy(items);
        assert!(close(h, 600f64.log2(), 1e-9));
        assert!(close(max_entropy(600), 9.2288, 1e-3));
    }

    #[test]
    fn entropy_of_constant_multiset_is_zero() {
        let items = vec![7u32; 100];
        assert_eq!(shannon_entropy(items), 0.0);
        assert_eq!(shannon_entropy_of_counts(Vec::<u64>::new()), 0.0);
    }

    #[test]
    fn entropy_decreases_with_concentration() {
        // 600 slots: uniform over 600 vs heavily repeated small support.
        let uniform: Vec<u32> = (0..600).collect();
        let concentrated: Vec<u32> = (0..600).map(|i| i % 25).collect();
        assert!(shannon_entropy(uniform) > shannon_entropy(concentrated));
        assert!(close(
            shannon_entropy((0..600).map(|i| i % 25)),
            25f64.log2(),
            1e-9
        ));
    }

    #[test]
    fn kl_divergence_properties() {
        let p = [0.25, 0.25, 0.25, 0.25];
        let q = [0.4, 0.3, 0.2, 0.1];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn collusion_entropy_matches_paper_operating_point() {
        // Section 6.3.2: γ = 8.95, m' = 25 colluders (the node plus 25 others;
        // we follow the paper text: "colluding with 25 other nodes"), history
        // of nh·f = 600 entries ⇒ p*m ≈ 21 %.
        let pm = max_undetectable_bias(8.95, 25, 600).expect("threshold reachable");
        assert!(close(pm, 0.21, 0.02), "p*m = {pm}");
    }

    #[test]
    fn unbiased_selection_has_near_maximal_entropy() {
        // pm at the baseline fraction is indistinguishable from uniform: the
        // entropy must be close to log2(nh·f).
        let h = collusion_entropy(25.0 / 600.0, 25, 600);
        assert!(h > 9.2, "entropy {h}");
    }

    #[test]
    fn full_bias_entropy_is_log2_of_coalition() {
        let h = collusion_entropy(1.0, 25, 600);
        assert!(close(h, 25f64.log2(), 1e-9));
    }

    #[test]
    fn stricter_threshold_allows_less_bias() {
        let loose = max_undetectable_bias(8.5, 25, 600).unwrap();
        let strict = max_undetectable_bias(9.1, 25, 600).unwrap();
        assert!(strict < loose);
    }

    #[test]
    fn unreachable_threshold_returns_none() {
        // γ above the maximum entropy can never be satisfied.
        assert!(max_undetectable_bias(10.0, 25, 600).is_none());
    }

    #[test]
    fn gamma_calibration_reproduces_the_paper_threshold() {
        // nh·f = 600 entries, 10,000 nodes: observed entropies 9.11–9.21 and
        // the paper picks γ = 8.95.
        let entropies = uniform_selection_entropy(600, 10_000, 200, 11);
        let min = entropies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = entropies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 9.05, "min entropy {min}");
        assert!(max < 9.24, "max entropy {max}");
        let gamma = calibrate_gamma(600, 10_000, 200, 0.15, 11);
        assert!((gamma - 8.95).abs() < 0.07, "γ = {gamma}");
    }

    #[test]
    fn gamma_calibration_adapts_to_small_systems() {
        // A 300-node PlanetLab-sized system with f = 7 has far more partner
        // collisions, so the calibrated threshold is much lower.
        let gamma = calibrate_gamma(350, 300, 100, 0.15, 12);
        assert!(gamma < 8.3, "γ = {gamma}");
        assert!(gamma > 7.0, "γ = {gamma}");
    }

    #[test]
    fn larger_coalitions_can_bias_more() {
        let small = max_undetectable_bias(8.95, 10, 600).unwrap();
        let large = max_undetectable_bias(8.95, 50, 600).unwrap();
        assert!(large > small);
    }
}
