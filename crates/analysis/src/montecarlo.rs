//! Analysis-level Monte-Carlo model of the blames applied to a node.
//!
//! Figures 10–12 of the paper are produced by Monte-Carlo simulations of the
//! *blame process* (not of the full packet-level system): each gossip period,
//! a node is blamed by its partners and verifiers according to the events
//! described in Section 6.2, with message losses drawn from a Bernoulli
//! distribution. [`BlameModel`] implements exactly that generative process; it
//! mirrors the structure of the closed forms in [`crate::formulas`] so the two
//! can be cross-validated (and are, in the tests below).

use lifting_sim::{pool, split_seed};
use rand::rngs::SmallRng;
use rand::{Bernoulli, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::formulas::{FreeridingDegree, ProtocolParams};
use crate::stats::Summary;

/// Generative model of per-period blames for one node.
#[derive(Debug, Clone, Copy)]
pub struct BlameModel {
    params: ProtocolParams,
    pdcc: f64,
    /// Cached `exp(-f)` for the Poisson verifier-count draw: the exponential
    /// is invariant across the millions of samples a sweep takes, and it
    /// dominated the per-sample cost when recomputed inside the loop.
    poisson_l: f64,
    /// Precomputed draws for the model-invariant probabilities (each is
    /// bit-identical to `gen_bool` at the same probability — see
    /// [`Bernoulli`]): message survival `pr`, both-ways `pr²`, the
    /// all-serves-plus-ack chain `pr^(|R|+1)`, the per-witness chain `pr³`,
    /// and the cross-check trigger `pdcc`.
    draw_pr: Bernoulli,
    draw_pr_both_ways: Bernoulli,
    draw_pr_serves_and_ack: Bernoulli,
    draw_pr_cubed: Bernoulli,
    draw_pdcc: Bernoulli,
}

/// Normalized scores sampled for a population of honest nodes and freeriders.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScoreSamples {
    /// Normalized scores of honest nodes.
    pub honest: Vec<f64>,
    /// Normalized scores of freeriders.
    pub freeriders: Vec<f64>,
}

impl BlameModel {
    /// Creates a blame model.
    ///
    /// # Panics
    ///
    /// Panics if `pdcc` is not in `[0, 1]`.
    pub fn new(params: ProtocolParams, pdcc: f64) -> Self {
        assert!((0.0..=1.0).contains(&pdcc), "pdcc = {pdcc} not in [0, 1]");
        BlameModel {
            params,
            pdcc,
            poisson_l: (-(params.fanout as f64)).exp(),
            draw_pr: Bernoulli::new(params.pr),
            draw_pr_both_ways: Bernoulli::new(params.pr * params.pr),
            draw_pr_serves_and_ack: Bernoulli::new(params.pr.powi(params.requested as i32 + 1)),
            draw_pr_cubed: Bernoulli::new(params.pr.powi(3)),
            draw_pdcc: Bernoulli::new(pdcc),
        }
    }

    /// The protocol parameters of the model.
    pub fn params(&self) -> ProtocolParams {
        self.params
    }

    /// The probability `pdcc` of triggering a direct cross-check.
    pub fn pdcc(&self) -> f64 {
        self.pdcc
    }

    /// Expected wrongful blame per period given this model's `pdcc`
    /// (Equation 5 covers `pdcc = 1`; for smaller `pdcc` only a fraction of
    /// the cross-checking blames occur). This is the per-period compensation
    /// LiFTinG applies to all scores.
    pub fn compensation_per_period(&self) -> f64 {
        self.params.expected_blame_direct_verification()
            + self.pdcc * self.params.expected_blame_cross_checking()
    }

    /// Samples the blame applied to a node of degree `delta` during one gossip
    /// period (Section 6.2's event model).
    pub fn sample_period_blame<R: Rng + ?Sized>(
        &self,
        delta: FreeridingDegree,
        rng: &mut R,
    ) -> f64 {
        // Every probability below is loop-invariant; computing them once per
        // sample (and the model-level powers/exponentials once per model)
        // matters because a sweep draws hundreds of millions of these. The
        // values — and therefore every RNG draw and outcome — are exactly the
        // ones the inline expressions produced.
        let f = self.params.fanout;
        let r_len = self.params.requested;
        let f_blame = f as f64;
        let propose_target = (1.0 - delta.delta1) * f_blame;
        let serve_target = (1.0 - delta.delta3) * r_len as f64;
        let draw_witness_keep = Bernoulli::new(1.0 - delta.delta1);
        let draw_drop_source = Bernoulli::new(delta.delta2);
        let draw_pr = self.draw_pr;
        let mut blame = 0.0;

        // --- Direct verification: blames from the partners this node proposed to.
        // Fractional counts (e.g. serving 90 % of 4 chunks) are resolved by
        // randomized rounding so expectations match the closed forms exactly.
        let fanout_used = sample_count(rng, propose_target).min(f);
        for _ in 0..fanout_used {
            if !draw_pr.sample(rng) {
                continue; // proposal lost: the partner never expects anything
            }
            if !draw_pr.sample(rng) {
                // Request lost: nothing arrives, the partner blames by f.
                blame += f_blame;
                continue;
            }
            let served = sample_count(rng, serve_target).min(r_len);
            let received = (0..served).filter(|_| draw_pr.sample(rng)).count();
            blame += f_blame * (r_len - received) as f64 / r_len as f64;
        }

        // --- Direct cross-checking: blames from the nodes that served this
        // node during the previous period. Each other node picks its partners
        // uniformly at random, so the number of verifiers is Poisson(f)
        // distributed around the fanout in steady state.
        let verifiers = sample_poisson_with(rng, self.poisson_l);
        for _ in 0..verifiers {
            // Partial propose: this verifier's chunks were deliberately dropped.
            if delta.delta2 > 0.0 && draw_drop_source.sample(rng) {
                blame += f_blame;
                continue;
            }
            if !self.draw_pdcc.sample(rng) {
                continue; // this verifier does not cross-check this time
            }
            // The verifier only holds the node accountable if its own
            // proposal/request exchange with the node succeeded.
            if !self.draw_pr_both_ways.sample(rng) {
                continue;
            }
            // All |R| serves plus the ack must arrive for the verifier to see
            // a consistent acknowledgment; otherwise it blames by f.
            if !self.draw_pr_serves_and_ack.sample(rng) {
                blame += f_blame;
                continue;
            }
            // Per-witness checks: each of the f expected witnesses yields a
            // blame of 1 if the propose/confirm/response chain breaks or if
            // the node never proposed to it because of its reduced fanout.
            for _ in 0..f {
                let witness_ok = draw_witness_keep.sample(rng) && self.draw_pr_cubed.sample(rng);
                if !witness_ok {
                    blame += 1.0;
                }
            }
        }
        blame
    }

    /// Samples the normalized score (Equation 6) of a node of degree `delta`
    /// after `periods` gossip periods: blames are compensated by the expected
    /// wrongful blame each period and averaged.
    pub fn sample_normalized_score<R: Rng + ?Sized>(
        &self,
        delta: FreeridingDegree,
        periods: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(periods > 0, "at least one period is required");
        let compensation = self.compensation_per_period();
        let mut sum = 0.0;
        for _ in 0..periods {
            sum += self.sample_period_blame(delta, rng) - compensation;
        }
        -sum / periods as f64
    }

    /// Samples normalized scores for a whole population: `honest` honest nodes
    /// and `freeriders` freeriders of degree `delta`, each observed for
    /// `periods` gossip periods.
    ///
    /// Trials run on a worker pool. Each node's RNG stream is derived from
    /// `(seed, node index)` with the splitmix64 mixer, so the result is
    /// bit-identical however many workers execute the loop (including one) —
    /// the same deterministic-seed discipline as the scenario fleet in
    /// `lifting-runtime`.
    pub fn population_scores(
        &self,
        honest: usize,
        freeriders: usize,
        delta: FreeridingDegree,
        periods: usize,
        seed: u64,
    ) -> ScoreSamples {
        let total = honest + freeriders;
        let mut scores = pool::run_indexed(total, |i| {
            let mut rng = SmallRng::seed_from_u64(split_seed(seed, i as u64));
            let degree = if i < honest {
                FreeridingDegree::HONEST
            } else {
                delta
            };
            self.sample_normalized_score(degree, periods, &mut rng)
        });
        let freerider_scores = scores.split_off(honest);
        ScoreSamples {
            honest: scores,
            freeriders: freerider_scores,
        }
    }

    /// Monte-Carlo estimate of the mean and standard deviation of the
    /// per-period blame applied to a node of degree `delta`.
    ///
    /// The paper's closed form for the standard deviation lives in a companion
    /// technical report; this estimator plays its role when evaluating the
    /// Chebyshev bounds of Section 6.3.1.
    pub fn estimate_blame_stats(
        &self,
        delta: FreeridingDegree,
        samples: usize,
        seed: u64,
    ) -> Summary {
        // Same per-trial seed derivation as `population_scores`: parallel and
        // sequential execution agree bit for bit.
        let draws = pool::run_indexed(samples, |i| {
            let mut rng = SmallRng::seed_from_u64(split_seed(seed, i as u64));
            self.sample_period_blame(delta, &mut rng)
        });
        Summary::of(&draws)
    }
}

/// Randomized rounding of a non-negative real count: returns `floor(x)` or
/// `ceil(x)` with probabilities such that the expectation equals `x`.
fn sample_count<R: Rng + ?Sized>(rng: &mut R, x: f64) -> usize {
    let base = x.floor();
    let frac = x - base;
    let mut count = base as usize;
    if frac > 0.0 && rng.gen_bool(frac) {
        count += 1;
    }
    count
}

/// Samples a Poisson variate with Knuth's product-of-uniforms algorithm
/// (fine for the small λ ≈ fanout used here), taking the precomputed
/// `l = exp(-λ)` so the exponential is paid once per model, not per sample.
/// `l >= 1` (i.e. λ ≤ 0) degenerates to zero, like the old λ check did.
fn sample_poisson_with<R: Rng + ?Sized>(rng: &mut R, l: f64) -> usize {
    if l >= 1.0 {
        return 0;
    }
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // defensive cap; unreachable for the λ used here
        }
    }
}

impl ScoreSamples {
    /// All scores (honest then freeriders).
    pub fn all(&self) -> Vec<f64> {
        let mut v = self.honest.clone();
        v.extend_from_slice(&self.freeriders);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_mean_blame_matches_closed_form() {
        // Figure 10 setting: f = 12, |R| = 4, pl = 7 %, pdcc = 1.
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let stats = model.estimate_blame_stats(FreeridingDegree::HONEST, 20_000, 42);
        let expected = params.expected_wrongful_blame();
        let rel_err = (stats.mean - expected).abs() / expected;
        assert!(
            rel_err < 0.02,
            "Monte-Carlo mean {} vs closed form {expected}",
            stats.mean
        );
        // The paper reports an experimental σ(b) of 25.6 in this setting.
        assert!(
            (stats.std_dev - 25.6).abs() < 3.0,
            "σ(b) = {}",
            stats.std_dev
        );
    }

    #[test]
    fn freerider_mean_blame_matches_closed_form() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let delta = FreeridingDegree::uniform(0.1);
        let stats = model.estimate_blame_stats(delta, 20_000, 43);
        let expected = params.expected_blame_freerider(delta);
        let rel_err = (stats.mean - expected).abs() / expected;
        assert!(
            rel_err < 0.05,
            "Monte-Carlo mean {} vs closed form {expected}",
            stats.mean
        );
    }

    #[test]
    fn compensated_honest_scores_average_zero() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let samples = model.population_scores(2_000, 0, FreeridingDegree::HONEST, 1, 7);
        let summary = Summary::of(&samples.honest);
        assert!(
            summary.mean.abs() < 2.0,
            "average honest score should be ≈ 0, got {}",
            summary.mean
        );
    }

    #[test]
    fn freeriders_score_lower_than_honest_nodes() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let samples = model.population_scores(500, 500, FreeridingDegree::uniform(0.1), 50, 11);
        let honest = Summary::of(&samples.honest);
        let freeriders = Summary::of(&samples.freeriders);
        assert!(
            freeriders.mean < honest.mean - 5.0,
            "freeriders {} vs honest {}",
            freeriders.mean,
            honest.mean
        );
    }

    #[test]
    fn normalized_score_variance_shrinks_with_time() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let short = model.population_scores(500, 0, FreeridingDegree::HONEST, 2, 3);
        let long = model.population_scores(500, 0, FreeridingDegree::HONEST, 50, 4);
        assert!(Summary::of(&long.honest).std_dev < Summary::of(&short.honest).std_dev);
    }

    #[test]
    fn lower_pdcc_produces_less_blame() {
        let params = ProtocolParams::planetlab_defaults();
        let full = BlameModel::new(params, 1.0);
        let half = BlameModel::new(params, 0.5);
        let b_full = full.estimate_blame_stats(FreeridingDegree::HONEST, 10_000, 5);
        let b_half = half.estimate_blame_stats(FreeridingDegree::HONEST, 10_000, 6);
        assert!(b_half.mean < b_full.mean);
        assert!(half.compensation_per_period() < full.compensation_per_period());
    }

    #[test]
    fn no_loss_and_honest_means_zero_blame() {
        let params = ProtocolParams::new(7, 4, 1.0);
        let model = BlameModel::new(params, 1.0);
        let stats = model.estimate_blame_stats(FreeridingDegree::HONEST, 1_000, 9);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.std_dev, 0.0);
    }

    #[test]
    fn population_scores_are_reproducible() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let a = model.population_scores(50, 50, FreeridingDegree::uniform(0.05), 10, 123);
        let b = model.population_scores(50, 50, FreeridingDegree::uniform(0.05), 10, 123);
        assert_eq!(a.honest, b.honest);
        assert_eq!(a.freeriders, b.freeriders);
    }

    /// The regression contract of the parallel trial loop: whatever the pool
    /// does, every score equals the one produced by a plain sequential loop
    /// deriving the same per-node stream from `(seed, index)`.
    #[test]
    fn parallel_population_scores_match_the_sequential_derivation() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let (honest_n, freerider_n, periods, seed) = (120, 80, 5, 987u64);
        let delta = FreeridingDegree::uniform(0.1);
        let samples = model.population_scores(honest_n, freerider_n, delta, periods, seed);

        let sequential: Vec<f64> = (0..honest_n + freerider_n)
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(split_seed(seed, i as u64));
                let degree = if i < honest_n {
                    FreeridingDegree::HONEST
                } else {
                    delta
                };
                model.sample_normalized_score(degree, periods, &mut rng)
            })
            .collect();
        assert_eq!(samples.honest, sequential[..honest_n]);
        assert_eq!(samples.freeriders, sequential[honest_n..]);
    }

    #[test]
    #[should_panic]
    fn zero_periods_panics() {
        let params = ProtocolParams::simulation_defaults();
        let model = BlameModel::new(params, 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = model.sample_normalized_score(FreeridingDegree::HONEST, 0, &mut rng);
    }
}
