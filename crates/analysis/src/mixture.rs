//! Two-component Gaussian mixture fitting.
//!
//! Section 6.2 of the paper notes that the score distribution is "a mixture of
//! two components" (honest nodes and freeriders) and that likelihood
//! maximization could be used to separate them, before arguing for a fixed
//! absolute threshold instead. This module provides a small 1-D expectation–
//! maximization fitter so the repository can *ablate* that design choice: the
//! `fig11_score_distributions` experiment compares the fixed threshold
//! `η = −9.75` with the crossing point of a fitted mixture.

use serde::{Deserialize, Serialize};

/// One Gaussian component of the mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Mixing weight in `[0, 1]`.
    pub weight: f64,
    /// Mean.
    pub mean: f64,
    /// Variance (floored at a small positive value during fitting).
    pub variance: f64,
}

impl Component {
    fn pdf(&self, x: f64) -> f64 {
        let var = self.variance.max(1e-9);
        let d = x - self.mean;
        (-(d * d) / (2.0 * var)).exp() / (2.0 * std::f64::consts::PI * var).sqrt()
    }
}

/// A two-component 1-D Gaussian mixture fitted by EM.
///
/// The component with the lower mean is always reported first (for the score
/// mixtures of the paper that is the freerider mode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    /// Component with the lower mean (freeriders, for score data).
    pub low: Component,
    /// Component with the higher mean (honest nodes, for score data).
    pub high: Component,
    /// Log-likelihood of the data under the fitted mixture.
    pub log_likelihood: f64,
}

impl GaussianMixture {
    /// Fits a two-component mixture to `data` with `iterations` EM steps.
    ///
    /// Returns `None` if fewer than four samples are provided (the fit would
    /// be meaningless).
    pub fn fit(data: &[f64], iterations: usize) -> Option<GaussianMixture> {
        if data.len() < 4 {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let n = sorted.len();
        // Initialize from the lower and upper halves of the sorted data.
        let half = n / 2;
        let mut low = init_component(&sorted[..half], 0.5);
        let mut high = init_component(&sorted[half..], 0.5);

        let mut responsibilities = vec![0.0f64; n];
        let mut log_likelihood = f64::NEG_INFINITY;
        for _ in 0..iterations.max(1) {
            // E step: responsibility of the low component for each point.
            let mut ll = 0.0;
            for (i, &x) in data.iter().enumerate() {
                let pl = low.weight * low.pdf(x);
                let ph = high.weight * high.pdf(x);
                let total = (pl + ph).max(1e-300);
                responsibilities[i] = pl / total;
                ll += total.ln();
            }
            log_likelihood = ll;
            // M step.
            let rl: f64 = responsibilities.iter().sum();
            let rh = n as f64 - rl;
            if rl < 1e-9 || rh < 1e-9 {
                break; // one component collapsed; keep the current estimate
            }
            low = m_step(data, &responsibilities, rl, true);
            high = m_step(data, &responsibilities, rh, false);
        }
        let (low, high) = if low.mean <= high.mean {
            (low, high)
        } else {
            (high, low)
        };
        Some(GaussianMixture {
            low,
            high,
            log_likelihood,
        })
    }

    /// Posterior probability that `x` belongs to the low-mean component.
    pub fn posterior_low(&self, x: f64) -> f64 {
        let pl = self.low.weight * self.low.pdf(x);
        let ph = self.high.weight * self.high.pdf(x);
        if pl + ph == 0.0 {
            0.5
        } else {
            pl / (pl + ph)
        }
    }

    /// The decision boundary between the two components: the point between the
    /// two means where the posterior switches (found by bisection).
    pub fn decision_boundary(&self) -> f64 {
        let mut lo = self.low.mean;
        let mut hi = self.high.mean;
        if lo == hi {
            return lo;
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.posterior_low(mid) > 0.5 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

fn init_component(data: &[f64], weight: f64) -> Component {
    let n = data.len().max(1) as f64;
    let mean = data.iter().sum::<f64>() / n;
    let variance = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Component {
        weight,
        mean,
        variance: variance.max(1e-6),
    }
}

fn m_step(data: &[f64], resp_low: &[f64], total_resp: f64, low: bool) -> Component {
    let n = data.len() as f64;
    let resp = |i: usize| {
        if low {
            resp_low[i]
        } else {
            1.0 - resp_low[i]
        }
    };
    let mean = data
        .iter()
        .enumerate()
        .map(|(i, &x)| resp(i) * x)
        .sum::<f64>()
        / total_resp;
    let variance = data
        .iter()
        .enumerate()
        .map(|(i, &x)| resp(i) * (x - mean) * (x - mean))
        .sum::<f64>()
        / total_resp;
    Component {
        weight: total_resp / n,
        mean,
        variance: variance.max(1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_sample(rng: &mut SmallRng, mean: f64, std: f64) -> f64 {
        // Box–Muller transform; good enough for test data.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn recovers_two_well_separated_modes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut data = Vec::new();
        for _ in 0..900 {
            data.push(gaussian_sample(&mut rng, 0.0, 2.0));
        }
        for _ in 0..100 {
            data.push(gaussian_sample(&mut rng, -25.0, 3.0));
        }
        let fit = GaussianMixture::fit(&data, 100).unwrap();
        assert!(
            (fit.low.mean - (-25.0)).abs() < 2.0,
            "low mean {}",
            fit.low.mean
        );
        assert!(fit.high.mean.abs() < 1.0, "high mean {}", fit.high.mean);
        assert!((fit.low.weight - 0.1).abs() < 0.05);
        let boundary = fit.decision_boundary();
        assert!(boundary > -25.0 && boundary < 0.0, "boundary {boundary}");
        assert!(fit.posterior_low(-30.0) > 0.99);
        assert!(fit.posterior_low(1.0) < 0.01);
    }

    #[test]
    fn too_few_samples_returns_none() {
        assert!(GaussianMixture::fit(&[1.0, 2.0], 10).is_none());
    }

    #[test]
    fn single_mode_data_still_converges() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data: Vec<f64> = (0..500)
            .map(|_| gaussian_sample(&mut rng, 5.0, 1.0))
            .collect();
        let fit = GaussianMixture::fit(&data, 50).unwrap();
        // Both components should sit near the single mode.
        assert!((fit.low.mean - 5.0).abs() < 2.0);
        assert!((fit.high.mean - 5.0).abs() < 2.0);
        assert!(fit.log_likelihood.is_finite());
    }
}
