//! Score-based detection metrics (Section 6.3.1).
//!
//! The paper expels a node when its normalized score drops below a fixed
//! threshold `η`. Given samples of honest and freerider scores, these helpers
//! compute the achieved detection probability `α`, the false-positive
//! probability `β`, and calibrate `η` for a target `β` (the paper picks
//! `η = −9.75` so that `β < 1 %`).

/// Fraction of freerider scores strictly below the detection threshold `eta`
/// (the detection probability `α`). Returns 0 for an empty sample.
pub fn detection_rate(freerider_scores: &[f64], eta: f64) -> f64 {
    rate_below(freerider_scores, eta)
}

/// Fraction of honest scores strictly below the detection threshold `eta`
/// (the false-positive probability `β`). Returns 0 for an empty sample.
pub fn false_positive_rate(honest_scores: &[f64], eta: f64) -> f64 {
    rate_below(honest_scores, eta)
}

/// The detection convention, shared by every rate and by the calibration:
/// a node is flagged when its score **drops strictly below** `η` (the paper's
/// "score drops below η"); a score sitting exactly on `η` is never flagged.
fn rate_below(scores: &[f64], eta: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|s| **s < eta).count() as f64 / scores.len() as f64
}

/// Calibrates the detection threshold `η` so that at most a fraction
/// `target_beta` of the given honest scores fall **strictly below** it —
/// the same convention [`false_positive_rate`] applies, so the calibrated
/// threshold always satisfies `false_positive_rate(honest, η) ≤ target_beta`,
/// ties included. Returns `None` if the sample is empty.
///
/// `η` is the `(⌊target_beta·n⌋ + 1)`-th smallest honest score: at most
/// `⌊target_beta·n⌋` scores lie strictly below it, and any larger threshold
/// would flag at least one more score and bust the budget. This replaces an
/// interpolated quantile, which could land *between* order statistics and —
/// with small samples or duplicated scores at the boundary — either violate
/// the β budget or silently exclude the boundary scores from detection.
///
/// # Panics
///
/// Panics if `target_beta` is outside `[0, 1]` or a score is NaN.
pub fn calibrate_threshold(honest_scores: &[f64], target_beta: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&target_beta),
        "target β = {target_beta} not in [0, 1]"
    );
    if honest_scores.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = honest_scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let budget = (target_beta * sorted.len() as f64).floor() as usize;
    Some(sorted[budget.min(sorted.len() - 1)])
}

/// Robust variant of [`calibrate_threshold`] for *contaminated* samples: the
/// lowest `trim` fraction of the scores is discarded before the β-quantile is
/// taken. An online defence recalibrating η from the **live** population (no
/// ground truth splitting honest from freerider scores) uses the trim to shear
/// off the suspected-freerider tail — a coalition throttling its contribution
/// to sit just above a static η would otherwise drag the recalibrated
/// threshold down with it.
///
/// With `trim = 0` this is exactly [`calibrate_threshold`].
///
/// # Panics
///
/// Panics if `target_beta` is outside `[0, 1]`, `trim` is outside `[0, 0.5]`,
/// or a score is NaN.
pub fn calibrate_threshold_trimmed(scores: &[f64], target_beta: f64, trim: f64) -> Option<f64> {
    assert!((0.0..=0.5).contains(&trim), "trim = {trim} not in [0, 0.5]");
    assert!(
        (0.0..=1.0).contains(&target_beta),
        "target β = {target_beta} not in [0, 1]"
    );
    if scores.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let dropped = (trim * sorted.len() as f64).floor() as usize;
    let kept = &sorted[dropped.min(sorted.len() - 1)..];
    let budget = (target_beta * kept.len() as f64).floor() as usize;
    Some(kept[budget.min(kept.len() - 1)])
}

/// A robust low-outlier threshold for a *contaminated* live sample: the
/// lowest `trim` fraction (the suspected-freerider tail) is discarded, the
/// median and the MAD of the kept bulk estimate the honest location and
/// scale, and the threshold is placed `nmads` normal-consistent MADs
/// (`1.4826 · MAD`) below the median. Scores under the returned value are
/// low outliers relative to the honest bulk.
///
/// Unlike a quantile of the kept sample ([`calibrate_threshold_trimmed`]),
/// which by construction sits *at* the trim boundary and flags a fixed
/// fraction of the population every period, this adapts to the bulk's
/// spread: a tight honest cluster pushes the threshold right below itself,
/// a diffuse one keeps it conservative. Returns `None` when the sample is
/// empty or the bulk is degenerate (zero MAD — no scale to judge outliers
/// against).
///
/// # Panics
///
/// Panics if `trim` is outside `[0, 0.5]`, `nmads` is not positive, or a
/// score is NaN.
pub fn robust_outlier_threshold(scores: &[f64], trim: f64, nmads: f64) -> Option<f64> {
    assert!((0.0..=0.5).contains(&trim), "trim = {trim} not in [0, 0.5]");
    assert!(nmads > 0.0, "nmads = {nmads} must be positive");
    if scores.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let dropped = (trim * sorted.len() as f64).floor() as usize;
    let kept = &sorted[dropped.min(sorted.len() - 1)..];
    let median = kept[kept.len() / 2];
    let mut deviations: Vec<f64> = kept.iter().map(|s| (s - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("NaN in deviations"));
    let mad = deviations[deviations.len() / 2];
    if mad <= 0.0 {
        return None;
    }
    Some(median - nmads * 1.4826 * mad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_count_strictly_below_threshold() {
        let honest = [0.0, -1.0, -2.0, -20.0];
        let freeriders = [-30.0, -15.0, -5.0, -1.0];
        assert_eq!(false_positive_rate(&honest, -9.75), 0.25);
        assert_eq!(detection_rate(&freeriders, -9.75), 0.5);
        assert_eq!(detection_rate(&[], -9.75), 0.0);
        assert_eq!(false_positive_rate(&[], -9.75), 0.0);
    }

    #[test]
    fn calibration_meets_false_positive_budget() {
        // 1000 honest scores spread between -20 and 0.
        let honest: Vec<f64> = (0..1000).map(|i| -20.0 + 0.02 * i as f64).collect();
        let eta = calibrate_threshold(&honest, 0.01).unwrap();
        let beta = false_positive_rate(&honest, eta);
        assert!(beta <= 0.011, "β = {beta}");
        // A threshold slightly larger would exceed the budget.
        let beta_loose = false_positive_rate(&honest, eta + 0.5);
        assert!(beta_loose > beta);
    }

    #[test]
    fn calibration_of_empty_sample_is_none() {
        assert_eq!(calibrate_threshold(&[], 0.01), None);
    }

    #[test]
    fn calibration_with_tied_boundary_scores_respects_the_budget() {
        // Regression: the interpolated-quantile calibration could land between
        // order statistics, flagging more than target_beta of the honest
        // population. With heavy ties at the boundary the order-statistic
        // calibration must (a) keep β within budget and (b) leave the tied
        // boundary scores unflagged (strict `<`, the paper's convention).
        let honest = [-12.0, -12.0, -12.0, -12.0, -3.0, -2.0, -1.0, 0.0, 0.0, 1.0];
        let eta = calibrate_threshold(&honest, 0.10).unwrap();
        assert_eq!(eta, -12.0, "η sits on the tied boundary score");
        let beta = false_positive_rate(&honest, eta);
        assert!(beta <= 0.10, "β = {beta} busts the 10% budget");
        assert_eq!(beta, 0.0, "ties at η are never flagged");
        // A small sample where interpolation used to bust the budget: with
        // n = 10 and β = 1 %, *no* honest score may be flagged, so η must not
        // exceed the smallest honest score.
        let small = [-20.0, -10.0, -5.0, -4.0, -3.0, -2.5, -2.0, -1.5, -1.0, 0.0];
        let eta = calibrate_threshold(&small, 0.01).unwrap();
        assert_eq!(eta, -20.0);
        assert_eq!(false_positive_rate(&small, eta), 0.0);
        // Freeriders tied exactly on η are not detected (documented: strict).
        assert_eq!(detection_rate(&[-20.0, -30.0], eta), 0.5);
    }

    #[test]
    fn calibration_is_the_largest_budget_respecting_threshold() {
        let honest: Vec<f64> = (0..100).map(|i| -(i as f64)).collect();
        let eta = calibrate_threshold(&honest, 0.05).unwrap();
        assert!(false_positive_rate(&honest, eta) <= 0.05);
        // Any strictly larger threshold (up to the next distinct score)
        // flags more than the budget allows.
        let next = honest
            .iter()
            .copied()
            .filter(|s| *s > eta)
            .fold(f64::INFINITY, f64::min);
        assert!(false_positive_rate(&honest, next) > 0.05);
    }

    #[test]
    #[should_panic]
    fn invalid_target_beta_panics() {
        let _ = calibrate_threshold(&[0.0], 2.0);
    }

    #[test]
    fn trimmed_calibration_shears_off_a_contaminating_tail() {
        // 85 honest scores near zero plus a 15-node coalition parked at -8,
        // just above a static η of -9.75. Untrimmed, the quantile lands in
        // the coalition cluster; with a 30% trim the threshold is calibrated
        // on the honest bulk and rises above the coalition's perch.
        let mut live: Vec<f64> = (0..85).map(|i| -0.02 * i as f64).collect();
        live.extend(std::iter::repeat_n(-8.0, 15));
        let naive = calibrate_threshold_trimmed(&live, 0.01, 0.0).unwrap();
        assert_eq!(naive, calibrate_threshold(&live, 0.01).unwrap());
        assert_eq!(naive, -8.0, "untrimmed: dragged down by the coalition");
        let robust = calibrate_threshold_trimmed(&live, 0.01, 0.3).unwrap();
        assert!(robust > -8.0, "trimmed η = {robust} should clear -8");
        // Zero trim on a clean sample stays the exact legacy calibration.
        let honest: Vec<f64> = (0..1000).map(|i| -20.0 + 0.02 * i as f64).collect();
        assert_eq!(
            calibrate_threshold_trimmed(&honest, 0.01, 0.0),
            calibrate_threshold(&honest, 0.01)
        );
    }

    #[test]
    #[should_panic]
    fn invalid_trim_panics() {
        let _ = calibrate_threshold_trimmed(&[0.0], 0.01, 0.6);
    }

    #[test]
    fn outlier_threshold_separates_a_low_cluster_without_eating_the_bulk() {
        // A tight honest bulk around 7.5 (spread ±1) plus a freerider
        // cluster near 4.5. The threshold must land between them: below
        // every bulk score, above the cluster's top.
        let mut live: Vec<f64> = (0..80).map(|i| 6.5 + 0.025 * i as f64).collect();
        live.extend((0..15).map(|i| 4.0 + 0.05 * i as f64));
        let thr = robust_outlier_threshold(&live, 0.3, 3.0).unwrap();
        assert!(thr < 6.5, "threshold {thr} eats into the honest bulk");
        assert!(thr > 4.75, "threshold {thr} misses the freerider cluster");
        // Unlike the trimmed quantile, the rule never flags a fixed slice of
        // a *clean* population: on the bulk alone the threshold stays below
        // every score.
        let clean = &live[..80];
        let thr = robust_outlier_threshold(clean, 0.3, 3.0).unwrap();
        assert!(clean.iter().all(|s| *s > thr), "clean bulk flagged: {thr}");
    }

    #[test]
    fn outlier_threshold_degenerate_cases_are_none() {
        assert_eq!(robust_outlier_threshold(&[], 0.3, 3.0), None);
        // Identical scores: zero MAD, no scale to judge outliers against.
        assert_eq!(robust_outlier_threshold(&[5.0; 10], 0.3, 3.0), None);
    }

    #[test]
    #[should_panic]
    fn invalid_nmads_panics() {
        let _ = robust_outlier_threshold(&[0.0], 0.3, 0.0);
    }
}
