//! Score-based detection metrics (Section 6.3.1).
//!
//! The paper expels a node when its normalized score drops below a fixed
//! threshold `η`. Given samples of honest and freerider scores, these helpers
//! compute the achieved detection probability `α`, the false-positive
//! probability `β`, and calibrate `η` for a target `β` (the paper picks
//! `η = −9.75` so that `β < 1 %`).

use crate::stats::quantile;

/// Fraction of freerider scores strictly below the detection threshold `eta`
/// (the detection probability `α`). Returns 0 for an empty sample.
pub fn detection_rate(freerider_scores: &[f64], eta: f64) -> f64 {
    rate_below(freerider_scores, eta)
}

/// Fraction of honest scores strictly below the detection threshold `eta`
/// (the false-positive probability `β`). Returns 0 for an empty sample.
pub fn false_positive_rate(honest_scores: &[f64], eta: f64) -> f64 {
    rate_below(honest_scores, eta)
}

fn rate_below(scores: &[f64], eta: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|s| **s < eta).count() as f64 / scores.len() as f64
}

/// Calibrates the detection threshold `η` so that at most a fraction
/// `target_beta` of the given honest scores fall below it.
///
/// Returns the `target_beta`-quantile of the honest scores, i.e. the largest
/// threshold meeting the false-positive budget. Returns `None` if the sample
/// is empty.
///
/// # Panics
///
/// Panics if `target_beta` is outside `[0, 1]`.
pub fn calibrate_threshold(honest_scores: &[f64], target_beta: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&target_beta),
        "target β = {target_beta} not in [0, 1]"
    );
    quantile(honest_scores, target_beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_count_strictly_below_threshold() {
        let honest = [0.0, -1.0, -2.0, -20.0];
        let freeriders = [-30.0, -15.0, -5.0, -1.0];
        assert_eq!(false_positive_rate(&honest, -9.75), 0.25);
        assert_eq!(detection_rate(&freeriders, -9.75), 0.5);
        assert_eq!(detection_rate(&[], -9.75), 0.0);
        assert_eq!(false_positive_rate(&[], -9.75), 0.0);
    }

    #[test]
    fn calibration_meets_false_positive_budget() {
        // 1000 honest scores spread between -20 and 0.
        let honest: Vec<f64> = (0..1000).map(|i| -20.0 + 0.02 * i as f64).collect();
        let eta = calibrate_threshold(&honest, 0.01).unwrap();
        let beta = false_positive_rate(&honest, eta);
        assert!(beta <= 0.011, "β = {beta}");
        // A threshold slightly larger would exceed the budget.
        let beta_loose = false_positive_rate(&honest, eta + 0.5);
        assert!(beta_loose > beta);
    }

    #[test]
    fn calibration_of_empty_sample_is_none() {
        assert_eq!(calibrate_threshold(&[], 0.01), None);
    }

    #[test]
    #[should_panic]
    fn invalid_target_beta_panics() {
        let _ = calibrate_threshold(&[0.0], 2.0);
    }
}
