#!/usr/bin/env bash
# Tier-1 CI: build, test, then smoke-run the experiment suite twice (parallel
# and forced-sequential), require bit-identical figure/table numbers, and
# gate on wall-clock regressions against the committed bench snapshot.
set -euo pipefail
cd "$(dirname "$0")"

# Snapshot the committed bench/summary files: the smoke runs below overwrite
# them in the working tree, and the regression gate needs the committed one.
# The restore runs from a trap so that *any* exit — success, a failed smoke
# run, or an interrupt — puts the committed artifacts back and never leaves
# the worktree dirty. INT/TERM/HUP are trapped explicitly because bash does
# not run the EXIT trap when killed by an untrapped signal.
cp BENCH_experiments.json /tmp/bench_committed.json
cp experiments_summary.json /tmp/summary_committed.json
restore_artifacts() {
    [ -f /tmp/bench_committed.json ] && cp /tmp/bench_committed.json BENCH_experiments.json
    [ -f /tmp/summary_committed.json ] && cp /tmp/summary_committed.json experiments_summary.json
    return 0
}
trap restore_artifacts EXIT
trap 'restore_artifacts; trap - INT; kill -INT $$' INT
trap 'restore_artifacts; trap - TERM; kill -TERM $$' TERM
trap 'restore_artifacts; trap - HUP; kill -HUP $$' HUP

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> examples smoke (quick scale)"
# Clippy only *compiles* the examples; actually execute the two entry-point
# walkthroughs so a broken prelude or a panicking scenario is caught here.
cargo build --release --examples
LIFTING_EXAMPLE_QUICK=1 ./target/release/examples/quickstart > /dev/null
LIFTING_EXAMPLE_QUICK=1 ./target/release/examples/streaming_freeriders > /dev/null
echo "examples smoke OK"

echo "==> registry validation (components + scenario manifest)"
# Every registered component of every kind (transport, loss, capability,
# workload, adversary, exporter) must instantiate with default parameters,
# and the scenario registry must match the committed manifest exactly — a
# scenario added without updating the manifest (or silently dropped by a
# refactor) fails here before any experiment runs.
./target/release/run_scenario --validate-registry
./target/release/run_scenario --list-names > /tmp/scenario_names.txt
diff -u tests/scenario_manifest.txt /tmp/scenario_names.txt || {
    echo "scenario registry diverged from tests/scenario_manifest.txt;"
    echo "regenerate with: ./target/release/run_scenario --list-names > tests/scenario_manifest.txt"
    exit 1
}
echo "registry validation OK"

echo "==> run_all_experiments --quick (parallel, 4 shards)"
# The parallel leg also runs every scenario through the sharded wave executor
# (LIFTING_SHARDS is honored by the convenience entry points), so the
# determinism diff below doubles as a whole-suite sharded-vs-sequential gate.
LIFTING_SHARDS=4 ./target/release/run_all_experiments --quick
mv experiments_summary.json /tmp/summary_parallel.json

echo "==> run_all_experiments --quick --sequential"
./target/release/run_all_experiments --quick --sequential
mv experiments_summary.json /tmp/summary_sequential.json
cp BENCH_experiments.json /tmp/bench_sequential.json

echo "==> determinism check (parallel vs sequential)"
python3 - <<'EOF'
import json, sys
a = json.load(open('/tmp/summary_parallel.json'))
b = json.load(open('/tmp/summary_sequential.json'))
skip = {'timings_secs', 'total_wall_secs', 'workers', 'per_scale_timings', 'speedup_vs_seed'}
a = {k: v for k, v in a.items() if k not in skip}
b = {k: v for k, v in b.items() if k not in skip}
if a != b:
    sys.exit('parallel and sequential experiment outputs differ')
# The churn sweep must be part of the gated suite (dynamic membership has its
# own RNG streams; losing the section would silently un-gate them).
if 'churn' not in a or not a['churn']:
    sys.exit('summary is missing the churn sweep')
# Likewise the multistream sweep: multi-channel runs add per-stream planes,
# subscription-aware sampling and a dedicated RNG stream, all of which must
# stay bit-deterministic under the worker pool.
if 'multistream' not in a or not a['multistream']:
    sys.exit('summary is missing the multistream sweep')
# And the resilience sweep: fault injection, closed-loop adversaries and the
# online recalibration all touch the hot path and the RNG stream layout, so
# losing the section would silently un-gate the whole plane.
if 'resilience' not in a or not a['resilience']:
    sys.exit('summary is missing the resilience sweep')
# And the workload sweep: trace-driven membership plans expand from their own
# RNG stream and drive depart/rejoin/resubscribe events through the executor,
# all of which must stay bit-deterministic under workers and shards.
if 'workload' not in a or not a['workload']:
    sys.exit('summary is missing the workload sweep')
print('parallel and sequential outputs are identical '
      '(churn, multistream, resilience and workload sweeps included)')
EOF

echo "==> fault-injection smoke (quick scale)"
# One resilience scenario end to end outside the summary plumbing: partition
# waves must produce aborted (never wrongfully blamed) audits, and the run
# must finish with a live stream.
./target/release/run_scenario resilience/partition-waves --quick > /tmp/fault_smoke.json
python3 - <<'EOF'
import json, sys
d = json.load(open('/tmp/fault_smoke.json'))
rpc = d.get('audit_rpc') or {}
if not rpc.get('aborted_unreachable'):
    sys.exit('fault smoke: partition waves produced no aborted audits')
recovery = d.get('recovery') or {}
if len(recovery.get('waves') or []) != 2:
    sys.exit('fault smoke: expected both partition waves in the recovery trace')
health = (d.get('stream_health') or {}).get('fraction_clear') or []
if not health or health[-1] <= 0.2:
    sys.exit(f'fault smoke: stream collapsed under partition waves ({health[-1:]})')
print('fault-injection smoke OK')
EOF

echo "==> scale smoke (scale/1k sharded vs sequential, paper scale)"
# One beyond-golden-size scenario (n=1000, the first population that uses the
# large-world manager sampler) through the sharded wave executor: the readout
# must match the sequential run byte for byte at 4 shards, and the memory
# metric must stay within the per-node budget the scale/ family exists to
# protect.
./target/release/run_scenario scale/1k > /tmp/scale_sequential.json
./target/release/run_scenario scale/1k --shards 4 > /tmp/scale_sharded.json
python3 - <<'EOF'
import json, sys
a = json.load(open('/tmp/scale_sequential.json'))
b = json.load(open('/tmp/scale_sharded.json'))
if a != b:
    diff = {k for k in set(a) | set(b) if a.get(k) != b.get(k)}
    sys.exit(f'scale smoke: sharded readout diverged from sequential: {sorted(diff)}')
mem = a.get('memory_per_node_bytes') or 0
if not 0 < mem < 1_000_000:
    sys.exit(f'scale smoke: memory_per_node_bytes out of range ({mem})')
health = (a.get('stream_health') or {}).get('fraction_clear') or []
if not health or health[-1] <= 0.2:
    sys.exit(f'scale smoke: stream collapsed at n=1000 ({health[-1:]})')
print(f'scale smoke OK (sharded == sequential, {mem/1024:.1f} KiB/node)')
EOF

echo "==> bench smoke (quick wall-clock vs committed baseline)"
python3 - <<'EOF'
import json, sys

def quick_total(d):
    scales = d.get('scales')
    if isinstance(scales, dict) and 'Quick' in scales:
        return scales['Quick'].get('total_wall_secs')
    if d.get('scale') == 'Quick':
        return d.get('total_wall_secs')
    return None

committed = quick_total(json.load(open('/tmp/bench_committed.json')))
fresh = quick_total(json.load(open('/tmp/bench_sequential.json')))
if committed is None:
    sys.exit('committed BENCH_experiments.json has no Quick-scale total')
if fresh is None:
    sys.exit('fresh bench run produced no Quick-scale total')
print(f'quick suite total_wall_secs: committed {committed:.2f}s, fresh {fresh:.2f}s')
# Allow noisy-machine headroom; a >2x slowdown means a real hot-path
# regression, not scheduling jitter.
if fresh > 2.0 * committed:
    sys.exit(f'bench smoke FAILED: fresh quick run {fresh:.2f}s is more than '
             f'2x the committed baseline {committed:.2f}s')
print('bench smoke OK')
EOF

echo "==> OK"
