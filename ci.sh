#!/usr/bin/env bash
# Tier-1 CI: build, test, then smoke-run the experiment suite twice (parallel
# and forced-sequential) and require bit-identical figure/table numbers.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> run_all_experiments --quick (parallel)"
./target/release/run_all_experiments --quick
mv experiments_summary.json /tmp/summary_parallel.json

echo "==> run_all_experiments --quick --sequential"
./target/release/run_all_experiments --quick --sequential
mv experiments_summary.json /tmp/summary_sequential.json

echo "==> determinism check (parallel vs sequential)"
python3 - <<'EOF'
import json, sys
a = json.load(open('/tmp/summary_parallel.json'))
b = json.load(open('/tmp/summary_sequential.json'))
skip = {'timings_secs', 'total_wall_secs', 'workers'}
a = {k: v for k, v in a.items() if k not in skip}
b = {k: v for k, v in b.items() if k not in skip}
if a != b:
    sys.exit('parallel and sequential experiment outputs differ')
print('parallel and sequential outputs are identical')
EOF

cp /tmp/summary_parallel.json experiments_summary.json
echo "==> OK"
