//! Stream health with and without LiFTinG (the scenario of Figure 1).
//!
//! Three runs of the same system: no freeriders, 25 % freeriders without
//! LiFTinG, and 25 % freeriders with LiFTinG expelling them. The output is the
//! fraction of nodes viewing a clear stream as a function of the allowed
//! stream lag.
//!
//! Run with: `cargo run --release --example streaming_freeriders`

use lifting::prelude::*;

fn scenario(freerider_fraction: f64, lifting_enabled: bool, seed: u64) -> ScenarioConfig {
    // `LIFTING_EXAMPLE_QUICK=1` shrinks the three runs for smoke gates.
    let quick = std::env::var_os("LIFTING_EXAMPLE_QUICK").is_some();
    let mut config = ScenarioConfig::small_test(if quick { 40 } else { 120 }, seed);
    config.stream_rate_bps = 400_000;
    config.chunk_size = 4_096;
    config.duration = SimDuration::from_secs(if quick { 10 } else { 30 });
    config.network = NetworkConfig::planetlab(0.04);
    config.default_upload_bps = Some(2_000_000);
    config.poor_node_fraction = 0.05;
    config.poor_upload_bps = 500_000;
    config.lifting_enabled = lifting_enabled;
    if freerider_fraction > 0.0 {
        // Aggressive freeriders: they keep only ~45 % of their upload duty.
        config = config.with_planetlab_freeriders(freerider_fraction);
        if let Some(f) = &mut config.freeriders {
            f.degree = FreeriderConfig {
                delta1: 2.0 / 5.0,
                delta2: 0.2,
                delta3: 0.2,
                period_stretch: 1,
            };
        }
    }
    config
}

fn main() {
    let cases = [
        ("no freeriders", scenario(0.0, true, 1)),
        ("25% freeriders, no LiFTinG", scenario(0.25, false, 1)),
        ("25% freeriders, LiFTinG", scenario(0.25, true, 1)),
    ];

    let mut curves = Vec::new();
    for (label, config) in cases {
        println!("running: {label} ...");
        let outcome = run_scenario(config);
        println!(
            "  expelled {} nodes, overhead {:.2} %",
            outcome.expelled_count,
            100.0 * outcome.traffic.overhead_ratio
        );
        curves.push((label, outcome.stream_health));
    }

    println!();
    println!("fraction of nodes viewing a clear stream vs. stream lag (s)");
    print!("{:>8}", "lag");
    for (label, _) in &curves {
        print!("  {label:>28}");
    }
    println!();
    let lags = curves[0].1.lag_secs.clone();
    for (i, lag) in lags.iter().enumerate() {
        print!("{lag:>8.0}");
        for (_, health) in &curves {
            print!("  {:>28.3}", health.fraction_clear[i]);
        }
        println!();
    }
}
