//! Quickstart: broadcast a stream over gossip with 10 % freeriders and watch
//! LiFTinG separate them from the honest nodes.
//!
//! Run with: `cargo run --release --example quickstart`

use lifting::prelude::*;

fn main() {
    // A 100-node system streaming 300 kbps, with 10 % freeriders applying the
    // paper's PlanetLab degree of freeriding Δ = (1/7, 0.1, 0.1).
    // `LIFTING_EXAMPLE_QUICK=1` shrinks the run for smoke gates (CI executes
    // every example at quick scale so the entry points stay runnable).
    let quick = std::env::var_os("LIFTING_EXAMPLE_QUICK").is_some();
    let nodes = if quick { 40 } else { 100 };
    let secs = if quick { 8 } else { 30 };
    let mut config = ScenarioConfig::small_test(nodes, 42).with_planetlab_freeriders(0.1);
    config.stream_rate_bps = 300_000;
    config.duration = SimDuration::from_secs(secs);

    println!(
        "running a {}-node system for {}...",
        config.nodes, config.duration
    );
    let outcome = run_scenario(config);

    let eta = -9.75;
    println!();
    println!("== scores after {} ==", outcome.duration);
    let honest = outcome.finals.honest_scores();
    let freeriders = outcome.finals.freerider_scores();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "  honest nodes   : {:>4}   mean score {:>7.2}",
        honest.len(),
        mean(&honest)
    );
    println!(
        "  freeriders     : {:>4}   mean score {:>7.2}",
        freeriders.len(),
        mean(&freeriders)
    );
    println!();
    println!("== detection at η = {eta} ==");
    println!(
        "  detection rate       : {:.1} %",
        100.0 * outcome.detection_rate(eta)
    );
    println!(
        "  false-positive rate  : {:.1} %",
        100.0 * outcome.false_positive_rate(eta)
    );
    println!("  expelled nodes       : {}", outcome.expelled_count);
    println!();
    println!("== cost ==");
    println!(
        "  LiFTinG overhead     : {:.2} % of the gossip traffic",
        100.0 * outcome.traffic.overhead_ratio
    );
    println!(
        "  total messages sent  : {}",
        outcome.traffic.total_messages_sent
    );
}
