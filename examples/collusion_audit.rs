//! Colluding freeriders versus the a-posteriori audit.
//!
//! Colluders bias their partner selection towards the coalition, cover each
//! other up during confirmations and mount the man-in-the-middle attack of
//! Figure 8b. Direct cross-checking alone misses much of this; the entropy
//! checks of the local history audit expel them.
//!
//! Run with: `cargo run --release --example collusion_audit`

use lifting::prelude::*;

fn scenario(audits: bool, seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(100, seed).with_planetlab_freeriders(0.15);
    config.duration = SimDuration::from_secs(30);
    config.stream_rate_bps = 300_000;
    config.collusion = CollusionScenario {
        partner_bias: 0.6,
        cover_up: true,
        man_in_the_middle: true,
    };
    config.audits_enabled = audits;
    config.audit_interval = SimDuration::from_secs(5);
    config
}

fn report(label: &str, outcome: &RunOutcome) {
    let eta = -9.75;
    println!("== {label} ==");
    println!(
        "  detection rate      : {:.1} %",
        100.0 * outcome.detection_rate(eta)
    );
    println!(
        "  false positives     : {:.1} %",
        100.0 * outcome.false_positive_rate(eta)
    );
    println!("  expelled nodes      : {}", outcome.expelled_count);
    println!(
        "  audit traffic       : {} bytes",
        outcome
            .traffic
            .per_category
            .iter()
            .find(|(c, _)| matches!(c, lifting::net::TrafficCategory::Audit))
            .map(|(_, v)| v.bytes_sent)
            .unwrap_or(0)
    );
    println!();
}

fn main() {
    println!("colluding freeriders: biased selection + cover-up + man-in-the-middle\n");

    println!("running without a-posteriori audits ...");
    let without = run_scenario(scenario(false, 7));
    println!("running with a-posteriori audits ...\n");
    let with = run_scenario(scenario(true, 7));

    report("score-based detection only (no audits)", &without);
    report("with local-history audits and entropy checks", &with);

    println!(
        "audits expelled {} more nodes than score-based detection alone",
        with.expelled_count.saturating_sub(without.expelled_count)
    );

    // The analytical side of the same story: how much a colluder can bias its
    // selection before the entropy check fires (Equation 7).
    let gamma = 8.95;
    let pm = lifting::analysis::max_undetectable_bias(gamma, 25, 600).unwrap();
    println!(
        "\nEq. 7: with γ = {gamma}, a freerider colluding with 25 nodes can direct at most \
         {:.0} % of its pushes to the coalition without being caught",
        100.0 * pm
    );
}
