//! Full PlanetLab-scale emulation (the deployment of Section 7).
//!
//! 300 nodes, a 674 kbps stream, f = 7, Tg = 500 ms, M = 25 managers, 4 %
//! message loss, 10 % freeriders with Δ = (1/7, 0.1, 0.1). Prints the score
//! distributions at 25 s, 30 s and 35 s (Figure 14) and the headline detection
//! and false-positive rates.
//!
//! Run with: `cargo run --release --example planetlab_emulation`

use lifting::prelude::*;

fn main() {
    let config = ScenarioConfig::planetlab_baseline(2026).with_planetlab_freeriders(0.1);
    println!(
        "emulating {} nodes, {} kbps stream, {} freeriders ...",
        config.nodes,
        config.stream_rate_bps / 1000,
        config.freerider_count()
    );

    let snapshots = [
        SimDuration::from_secs(25),
        SimDuration::from_secs(30),
        SimDuration::from_secs(35),
    ];
    let outcome = run_scenario_with_snapshots(config, &snapshots);

    let eta = -9.75;
    for snap in &outcome.snapshots {
        let honest = Summary::of(&snap.honest_scores());
        let freeriders = Summary::of(&snap.freerider_scores());
        println!();
        println!("== after {} ==", snap.at);
        println!(
            "  honest    : mean {:>7.2}  σ {:>6.2}  (n = {})",
            honest.mean, honest.std_dev, honest.count
        );
        println!(
            "  freerider : mean {:>7.2}  σ {:>6.2}  (n = {})",
            freeriders.mean, freeriders.std_dev, freeriders.count
        );
        println!(
            "  detection {:.1} %   false positives {:.1} %",
            100.0 * snap.detection_rate(eta),
            100.0 * snap.false_positive_rate(eta)
        );
    }

    println!();
    println!(
        "final: detection {:.1} %, false positives {:.1} %, overhead {:.2} %, {} expelled",
        100.0 * outcome.detection_rate(eta),
        100.0 * outcome.false_positive_rate(eta),
        100.0 * outcome.traffic.overhead_ratio,
        outcome.expelled_count
    );
}
