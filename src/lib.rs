//! # LiFTinG — Lightweight Freerider-Tracking in Gossip (reproduction)
//!
//! This crate is the facade of a full reproduction of *LiFTinG: Lightweight
//! Freerider-Tracking in Gossip* (Guerraoui, Huguenin, Kermarrec, Monod,
//! Prusty — MIDDLEWARE 2010). It re-exports the workspace crates so that a
//! single dependency gives access to the whole system:
//!
//! * [`sim`] — deterministic discrete-event engine,
//! * [`net`] — simulated lossy UDP / reliable TCP transport with latency,
//!   bandwidth and traffic accounting,
//! * [`membership`] — uniform and (colluding-)biased peer sampling,
//! * [`gossip`] — the three-phase propose/request/serve dissemination protocol
//!   and the freerider behaviours of Section 4,
//! * [`reputation`] — the Alliatrust-like manager-based score store,
//! * [`core`] — LiFTinG itself: direct verification, direct cross-checking,
//!   a-posteriori audits, entropy checks, blame schedule,
//! * [`analysis`] — the closed forms of Section 6 and statistics utilities,
//! * [`runtime`] — scenario runner gluing everything together.
//!
//! ## Quickstart
//!
//! ```
//! use lifting::prelude::*;
//!
//! // A small system with 25 % freeriders, observed for a few seconds.
//! let mut config = ScenarioConfig::small_test(40, 1).with_planetlab_freeriders(0.25);
//! config.duration = SimDuration::from_secs(8);
//! let outcome = run_scenario(config);
//! let detection = outcome.detection_rate(-9.75);
//! let false_positives = outcome.false_positive_rate(-9.75);
//! assert!(detection >= false_positives);
//! ```
//!
//! The experiment harness that regenerates every table and figure of the paper
//! lives in the `lifting-bench` crate (one binary per experiment); see
//! `EXPERIMENTS.md` at the repository root for the measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lifting_analysis as analysis;
pub use lifting_core as core;
pub use lifting_gossip as gossip;
pub use lifting_membership as membership;
pub use lifting_net as net;
pub use lifting_reputation as reputation;
pub use lifting_runtime as runtime;
pub use lifting_sim as sim;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use lifting_analysis::{BlameModel, FreeridingDegree, ProtocolParams, Summary};
    pub use lifting_core::{Auditor, Blame, LiftingConfig, Verifier};
    pub use lifting_gossip::{Behavior, FreeriderConfig, GossipConfig, GossipNode, StreamSource};
    pub use lifting_membership::{Directory, PartnerSelector, SelectionPolicy};
    pub use lifting_net::{LatencyModel, LossModel, Network, NetworkConfig};
    pub use lifting_reputation::{ManagerAssignment, ManagerState};
    pub use lifting_runtime::{
        run_scenario, run_scenario_with_snapshots, AdversaryScenario, CollusionScenario,
        FreeriderScenario, RunOutcome, Scale, ScenarioConfig, ScenarioRegistry, StreamAudience,
        StreamSpec,
    };
    pub use lifting_sim::{NodeId, SimDuration, SimTime, StreamId};
}
