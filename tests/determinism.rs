//! Determinism regression test for the parallel experiment fleet: the same
//! `ScenarioConfig` list run through `run_scenarios_parallel` and through
//! sequential `run_scenario` calls must produce identical `RunOutcome`s, and
//! the Monte-Carlo population sampler must agree with itself across worker
//! counts.

use std::sync::Mutex;

use lifting::analysis::{BlameModel, FreeridingDegree, ProtocolParams};
use lifting::prelude::*;
use lifting::runtime::run_scenarios_parallel;

/// Tests in this file mutate `LIFTING_WORKERS`; serialize them so the test
/// harness's own threading cannot interleave the env writes.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn scenario_fleet() -> Vec<ScenarioConfig> {
    let mut fleet = Vec::new();
    for (i, seed) in [3u64, 17, 4242].into_iter().enumerate() {
        let mut config = ScenarioConfig::small_test(18 + 4 * i, seed);
        config.duration = SimDuration::from_secs(5);
        if i == 2 {
            config = config.with_planetlab_freeriders(0.25);
        }
        fleet.push(config);
    }
    fleet
}

#[test]
fn parallel_fleet_outcomes_equal_sequential_outcomes() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Force a few workers even on single-core machines so the threaded path
    // is genuinely exercised.
    std::env::set_var("LIFTING_WORKERS", "3");

    let fleet = scenario_fleet();
    let parallel = run_scenarios_parallel(fleet.clone());
    let sequential: Vec<RunOutcome> = fleet.into_iter().map(run_scenario).collect();

    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(
            p.finals.outcomes, s.finals.outcomes,
            "per-node outcomes diverged"
        );
        assert_eq!(p.expelled_count, s.expelled_count);
        assert_eq!(p.traffic.total_bytes_sent, s.traffic.total_bytes_sent);
        assert_eq!(p.traffic.total_messages_sent, s.traffic.total_messages_sent);
        assert_eq!(p.traffic.overhead_ratio, s.traffic.overhead_ratio);
        assert_eq!(
            p.stream_health.fraction_clear,
            s.stream_health.fraction_clear
        );
        assert_eq!(p.emitted_chunks, s.emitted_chunks);
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("LIFTING_WORKERS", "3");
    let config = {
        let mut c = ScenarioConfig::small_test(25, 99).with_planetlab_freeriders(0.2);
        c.duration = SimDuration::from_secs(6);
        c
    };
    let a = run_scenario(config.clone());
    let b = run_scenario(config);
    assert_eq!(a.finals.outcomes, b.finals.outcomes);
    assert_eq!(a.traffic.total_bytes_sent, b.traffic.total_bytes_sent);
    assert_eq!(
        a.stream_health.fraction_clear,
        b.stream_health.fraction_clear
    );
}

#[test]
fn monte_carlo_scores_do_not_depend_on_worker_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("LIFTING_WORKERS", "3");
    let model = BlameModel::new(ProtocolParams::simulation_defaults(), 1.0);
    let with_pool = model.population_scores(150, 100, FreeridingDegree::uniform(0.1), 8, 31);
    std::env::set_var("LIFTING_WORKERS", "1");
    let sequential = model.population_scores(150, 100, FreeridingDegree::uniform(0.1), 8, 31);
    std::env::remove_var("LIFTING_WORKERS");
    assert_eq!(with_pool.honest, sequential.honest);
    assert_eq!(with_pool.freeriders, sequential.freeriders);
}
