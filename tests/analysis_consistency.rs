//! Consistency between the three levels of the reproduction: the closed forms
//! of Section 6, the analysis-level Monte-Carlo blame model, and the packet-
//! level simulator — plus property-based tests on the cross-crate invariants.

use lifting::analysis::{
    calibrate_threshold, detection_rate, false_positive_rate, max_undetectable_bias, BlameModel,
    FreeridingDegree, ProtocolParams,
};
use proptest::prelude::*;

#[test]
fn monte_carlo_blames_match_closed_forms_across_parameters() {
    for (fanout, requested, pr) in [(7usize, 4usize, 0.96f64), (12, 4, 0.93), (10, 2, 0.90)] {
        let params = ProtocolParams::new(fanout, requested, pr);
        let model = BlameModel::new(params, 1.0);
        for delta in [
            FreeridingDegree::HONEST,
            FreeridingDegree::uniform(0.05),
            FreeridingDegree::uniform(0.15),
            FreeridingDegree::planetlab(),
        ] {
            let expected = params.expected_blame_freerider(delta);
            let observed = model.estimate_blame_stats(delta, 20_000, 7).mean;
            let rel = (observed - expected).abs() / expected.max(1.0);
            assert!(
                rel < 0.05,
                "f={fanout} |R|={requested} pr={pr} Δ={delta:?}: MC {observed} vs closed {expected}"
            );
        }
    }
}

#[test]
fn detection_improves_with_the_degree_of_freeriding() {
    // The core of Figure 12: more freeriding ⇒ more detection, at a fixed
    // false-positive budget.
    let params = ProtocolParams::simulation_defaults();
    let model = BlameModel::new(params, 1.0);
    let honest = model
        .population_scores(3_000, 0, FreeridingDegree::HONEST, 50, 1)
        .honest;
    let eta = calibrate_threshold(&honest, 0.01).unwrap();
    let mut last = 0.0;
    for delta in [0.02, 0.05, 0.10, 0.15] {
        let scores = model
            .population_scores(0, 1_000, FreeridingDegree::uniform(delta), 50, 2)
            .freeriders;
        let alpha = detection_rate(&scores, eta);
        assert!(
            alpha + 0.05 >= last,
            "detection should not decrease with δ (δ={delta}, α={alpha}, prev={last})"
        );
        last = alpha;
    }
    assert!(
        last > 0.95,
        "strong freeriders must be almost surely caught"
    );
    assert!(false_positive_rate(&honest, eta) <= 0.011);
}

#[test]
fn paper_operating_points_hold() {
    // b̃ = 72.95 for the Figure 10 parameters.
    let params = ProtocolParams::simulation_defaults();
    assert!((params.expected_wrongful_blame() - 72.95).abs() < 0.05);
    // p*m ≈ 21 % for γ = 8.95, m' = 25, nh·f = 600 (Section 6.3.2).
    let pm = max_undetectable_bias(8.95, 25, 600).unwrap();
    assert!((pm - 0.21).abs() < 0.02);
    // A 10 % bandwidth gain corresponds to δ ≈ 0.035 (Section 6.3.1).
    let gain = FreeridingDegree::uniform(0.035).gain();
    assert!((gain - 0.10).abs() < 0.01);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The gain formula is monotone in each δ and bounded by [0, 1].
    #[test]
    fn gain_is_monotone_and_bounded(d1 in 0.0f64..1.0, d2 in 0.0f64..1.0, d3 in 0.0f64..1.0) {
        let g = FreeridingDegree::new(d1, d2, d3).gain();
        prop_assert!((0.0..=1.0).contains(&g));
        let g_more = FreeridingDegree::new((d1 + 0.1).min(1.0), d2, d3).gain();
        prop_assert!(g_more + 1e-12 >= g);
    }

    /// Freeriding never decreases the expected blame, whatever the parameters.
    #[test]
    fn freeriding_never_pays_in_expectation(
        fanout in 3usize..20,
        requested in 1usize..8,
        pl in 0.0f64..0.3,
        delta in 0.0f64..0.5,
    ) {
        let params = ProtocolParams::new(fanout, requested, 1.0 - pl);
        let honest = params.expected_blame_freerider(FreeridingDegree::HONEST);
        let cheat = params.expected_blame_freerider(FreeridingDegree::uniform(delta));
        prop_assert!(cheat + 1e-9 >= honest);
    }

    /// Wrongful-blame expectations are non-negative and vanish without loss.
    #[test]
    fn wrongful_blame_expectations_are_sane(
        fanout in 3usize..20,
        requested in 1usize..8,
        pl in 0.0f64..0.5,
    ) {
        let params = ProtocolParams::new(fanout, requested, 1.0 - pl);
        prop_assert!(params.expected_wrongful_blame() >= 0.0);
        prop_assert!(params.expected_blame_direct_verification() >= 0.0);
        prop_assert!(params.expected_blame_cross_checking() >= 0.0);
        let no_loss = ProtocolParams::new(fanout, requested, 1.0);
        prop_assert!(no_loss.expected_wrongful_blame().abs() < 1e-9);
    }

    /// The maximal undetectable bias shrinks as the threshold γ grows.
    #[test]
    fn undetectable_bias_is_monotone_in_gamma(
        colluders in 2usize..60,
        extra in 0.1f64..1.2,
    ) {
        let history = 600usize;
        let base = max_undetectable_bias(8.0, colluders, history);
        let strict = max_undetectable_bias(8.0 + extra.min(1.2), colluders, history);
        if let (Some(b), Some(s)) = (base, strict) {
            prop_assert!(s <= b + 1e-9);
        }
    }
}
