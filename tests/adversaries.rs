//! End-to-end tests of the pluggable adversaries: the registry scenarios the
//! pre-refactor `Behavior`/`CollusionConfig` wiring could not express.

use lifting::prelude::*;
use lifting::runtime::{build_engine, AdversaryScenario, Scale, ScenarioRegistry, StackLayer};

#[test]
fn on_off_freeriders_run_through_the_registry_and_score_below_honest() {
    let mut config =
        ScenarioRegistry::builtin().build("adversary/on-off-freeriders", Scale::Quick, 5);
    config.duration = SimDuration::from_secs(12);
    assert!(matches!(
        config.adversary,
        AdversaryScenario::OnOff {
            on_periods: 2,
            off_periods: 2
        }
    ));
    let outcome = run_scenario(config);
    let honest = outcome.finals.honest_scores();
    let freeriders = outcome.finals.freerider_scores();
    assert!(!honest.is_empty() && !freeriders.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&freeriders) < mean(&honest),
        "on-off freeriders {:.2} should still score below honest {:.2}",
        mean(&freeriders),
        mean(&honest)
    );
}

#[test]
fn on_off_freeriders_dilute_blame_relative_to_constant_freeriders() {
    // Same population, same degree: the on-off adversary spends half its
    // periods honest, so its mean score must sit above the always-on
    // freerider's (that dilution is the attack).
    let build = |adversary: AdversaryScenario| {
        let mut config = ScenarioConfig::small_test(40, 77).with_planetlab_freeriders(0.25);
        config.duration = SimDuration::from_secs(15);
        config.adversary = adversary;
        config
    };
    let constant = run_scenario(build(AdversaryScenario::Baseline));
    let on_off = run_scenario(build(AdversaryScenario::OnOff {
        on_periods: 1,
        off_periods: 3,
    }));
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let constant_mean = mean(&constant.finals.freerider_scores());
    let on_off_mean = mean(&on_off.finals.freerider_scores());
    assert!(
        on_off_mean > constant_mean,
        "on-off ({on_off_mean:.2}) must dilute blame vs constant freeriding ({constant_mean:.2})"
    );
}

#[test]
fn blame_spammers_inflate_reputation_traffic_and_hurt_honest_scores() {
    let build = |adversary: AdversaryScenario| {
        let mut config = ScenarioConfig::small_test(30, 9).with_planetlab_freeriders(0.2);
        config.duration = SimDuration::from_secs(10);
        config.adversary = adversary;
        config
    };
    let baseline = run_scenario(build(AdversaryScenario::Baseline));
    let spammed = run_scenario(build(AdversaryScenario::BlameSpam {
        blames_per_period: 5,
        blame_value: 5.0,
    }));
    let blame_bytes = |o: &RunOutcome| {
        o.layer_traffic
            .iter()
            .find(|l| l.layer == StackLayer::Reputation)
            .map(|l| l.bytes_sent)
            .unwrap_or(0)
    };
    assert!(
        blame_bytes(&spammed) > 2 * blame_bytes(&baseline),
        "spam must inflate reputation-plane traffic ({} vs {})",
        blame_bytes(&spammed),
        blame_bytes(&baseline)
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&spammed.finals.honest_scores()) < mean(&baseline.finals.honest_scores()),
        "fabricated blames must drag honest scores down"
    );
}

#[test]
fn blame_spam_can_never_score_or_expel_the_source() {
    // The blame router drops any blame targeting node 0 before it reaches a
    // manager, so even an extreme spam volume cannot create a score record
    // for the source, let alone expel it.
    let mut config = ScenarioConfig::small_test(15, 13).with_planetlab_freeriders(0.2);
    config.adversary = AdversaryScenario::BlameSpam {
        blames_per_period: 50,
        blame_value: 100.0,
    };
    config.duration = SimDuration::from_secs(8);
    let mut engine = build_engine(config);
    engine.run_until(SimTime::from_secs(8));
    assert!(
        !engine.world().is_expelled(NodeId::new(0)),
        "the source must never be expelled"
    );
    assert!(
        !engine.world().emitted_chunks().is_empty(),
        "the stream must keep flowing under spam"
    );
}
