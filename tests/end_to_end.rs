//! End-to-end integration tests spanning every crate of the workspace:
//! dissemination, scoring, detection, compensation and overhead accounting.

use lifting::prelude::*;

const ETA: f64 = -9.75;

fn base(n: usize, seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(n, seed);
    config.duration = SimDuration::from_secs(12);
    config
}

#[test]
fn honest_system_delivers_the_stream_to_everyone() {
    let outcome = run_scenario(base(30, 1));
    let last = *outcome.stream_health.fraction_clear.last().unwrap();
    assert!(
        last > 0.9,
        "with no freeriders nearly every node should view a clear stream, got {last}"
    );
    assert_eq!(outcome.expelled_count, 0);
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let a = run_scenario(base(25, 99));
    let b = run_scenario(base(25, 99));
    assert_eq!(a.finals.honest_scores(), b.finals.honest_scores());
    assert_eq!(a.traffic.total_messages_sent, b.traffic.total_messages_sent);
    assert_eq!(a.expelled_count, b.expelled_count);
}

#[test]
fn different_seeds_produce_different_traffic_patterns() {
    let a = run_scenario(base(25, 1));
    let b = run_scenario(base(25, 2));
    assert_ne!(a.traffic.total_messages_sent, b.traffic.total_messages_sent);
}

#[test]
fn freeriders_end_up_with_lower_scores_and_higher_detection() {
    let mut config = base(40, 5).with_planetlab_freeriders(0.25);
    config.duration = SimDuration::from_secs(20);
    let outcome = run_scenario(config);

    let honest = outcome.finals.honest_scores();
    let freeriders = outcome.finals.freerider_scores();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(mean(&freeriders) < mean(&honest));
    assert!(
        outcome.detection_rate(ETA) >= outcome.false_positive_rate(ETA),
        "detection {} must dominate false positives {}",
        outcome.detection_rate(ETA),
        outcome.false_positive_rate(ETA)
    );
}

#[test]
fn message_loss_does_not_wreck_honest_scores_when_compensated() {
    let mut config = base(30, 8);
    config.network = NetworkConfig {
        loss: LossModel::bernoulli(0.05),
        ..NetworkConfig::ideal()
    };
    config.duration = SimDuration::from_secs(20);
    let outcome = run_scenario(config);
    // With compensation enabled, well under half of the honest population may
    // drift below the detection threshold even under 5 % loss.
    let fp = outcome.false_positive_rate(ETA);
    assert!(fp < 0.3, "false positives under loss: {fp}");
}

#[test]
fn disabling_compensation_is_strictly_worse_for_honest_nodes() {
    let mut with = base(30, 13);
    with.network = NetworkConfig {
        loss: LossModel::bernoulli(0.07),
        ..NetworkConfig::ideal()
    };
    with.duration = SimDuration::from_secs(15);
    let mut without = with.clone();
    without.lifting.compensate_wrongful_blames = false;

    let outcome_with = run_scenario(with);
    let outcome_without = run_scenario(without);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let m_with = mean(&outcome_with.finals.honest_scores());
    let m_without = mean(&outcome_without.finals.honest_scores());
    assert!(
        m_without < m_with,
        "uncompensated scores {m_without} should sit below compensated ones {m_with}"
    );
}

#[test]
fn verification_overhead_grows_with_pdcc_and_stays_small() {
    let mut low = base(30, 21);
    low.lifting.pdcc = 0.0;
    let mut mid = base(30, 21);
    mid.lifting.pdcc = 0.5;
    let mut high = base(30, 21);
    high.lifting.pdcc = 1.0;

    let o_low = run_scenario(low);
    let o_mid = run_scenario(mid);
    let o_high = run_scenario(high);

    assert!(o_low.traffic.overhead_ratio > 0.0, "acks are always sent");
    assert!(o_low.traffic.overhead_ratio < o_mid.traffic.overhead_ratio);
    assert!(o_mid.traffic.overhead_ratio < o_high.traffic.overhead_ratio);
    assert!(
        o_high.traffic.overhead_ratio < 0.30,
        "overhead should stay modest, got {}",
        o_high.traffic.overhead_ratio
    );
}

#[test]
fn traffic_accounting_is_consistent() {
    let outcome = run_scenario(base(20, 33));
    let mut sum = 0;
    for (_, counters) in &outcome.traffic.per_category {
        assert!(counters.bytes_delivered <= counters.bytes_sent);
        assert!(counters.messages_delivered <= counters.messages_sent);
        sum += counters.bytes_sent;
    }
    assert_eq!(sum, outcome.traffic.total_bytes_sent);
}

#[test]
fn expelled_freeriders_stop_hurting_the_stream() {
    // Aggressive freeriders; compare health with LiFTinG on and off. The
    // sparse test stream (a handful of chunks per period) produces much
    // smaller absolute blame values than the paper's 674 kbps deployment, so
    // the expulsion threshold is tuned to this scenario — η is a deployment
    // parameter, not a universal constant.
    let mut on = base(50, 17).with_planetlab_freeriders(0.3);
    if let Some(f) = &mut on.freeriders {
        f.degree = FreeriderConfig {
            delta1: 0.6,
            delta2: 0.5,
            delta3: 0.5,
            period_stretch: 1,
        };
    }
    on.lifting.eta = -3.0;
    on.duration = SimDuration::from_secs(25);
    let mut off = on.clone();
    off.lifting_enabled = false;

    let outcome_on = run_scenario(on);
    let outcome_off = run_scenario(off);
    // With LiFTinG at least some freeriders get expelled.
    assert!(
        outcome_on.expelled_count > 0,
        "LiFTinG should expel someone"
    );
    assert_eq!(outcome_off.expelled_count, 0);
    // Expelled nodes must be mostly freeriders, not honest nodes.
    let expelled_freeriders = outcome_on
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && o.is_freerider)
        .count();
    let expelled_honest = outcome_on
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && !o.is_freerider)
        .count();
    assert!(
        expelled_freeriders >= expelled_honest,
        "expelled {expelled_freeriders} freeriders vs {expelled_honest} honest nodes"
    );
}

#[test]
fn snapshots_show_scores_diverging_over_time() {
    let mut config = base(40, 55).with_planetlab_freeriders(0.25);
    config.duration = SimDuration::from_secs(20);
    let outcome = run_scenario_with_snapshots(
        config,
        &[SimDuration::from_secs(8), SimDuration::from_secs(18)],
    );
    assert_eq!(outcome.snapshots.len(), 2);
    let gap = |s: &lifting::runtime::ScoreSnapshot| {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        mean(&s.honest_scores()) - mean(&s.freerider_scores())
    };
    let early = gap(&outcome.snapshots[0]);
    let late = gap(&outcome.snapshots[1]);
    assert!(
        late >= early * 0.5,
        "the honest/freerider gap should not collapse over time (early {early}, late {late})"
    );
}
