//! Integration tests for colluding freeriders: biased partner selection,
//! cover-ups during cross-checking, the man-in-the-middle attack of Figure 8b,
//! and the a-posteriori audits that defeat them.

use lifting::prelude::*;

fn colluding_scenario(seed: u64, audits: bool) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(60, seed).with_planetlab_freeriders(0.2);
    config.duration = SimDuration::from_secs(20);
    config.collusion = CollusionScenario {
        partner_bias: 0.7,
        cover_up: true,
        man_in_the_middle: true,
    };
    config.audits_enabled = audits;
    config.audit_interval = SimDuration::from_secs(4);
    config
}

#[test]
fn audits_expel_colluding_freeriders() {
    let outcome = run_scenario(colluding_scenario(3, true));
    let expelled_freeriders = outcome
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && o.is_freerider)
        .count();
    assert!(
        expelled_freeriders > 0,
        "the entropy checks should expel at least one colluder"
    );
    let expelled_honest = outcome
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && !o.is_freerider)
        .count();
    assert!(
        expelled_freeriders > expelled_honest,
        "audits must hit colluders harder than honest nodes \
         ({expelled_freeriders} vs {expelled_honest})"
    );
}

#[test]
fn audits_catch_more_colluders_than_scores_alone() {
    let with_audits = run_scenario(colluding_scenario(9, true));
    let without_audits = run_scenario(colluding_scenario(9, false));
    let detected = |o: &RunOutcome| {
        o.finals
            .outcomes
            .iter()
            .filter(|n| {
                n.is_freerider && (n.expelled || n.score.map(|s| s < -9.75).unwrap_or(false))
            })
            .count()
    };
    assert!(
        detected(&with_audits) >= detected(&without_audits),
        "audits should not reduce detection ({} vs {})",
        detected(&with_audits),
        detected(&without_audits)
    );
}

#[test]
fn honest_nodes_survive_audits() {
    // No freeriders at all: periodic audits must not expel anyone.
    let mut config = ScenarioConfig::small_test(40, 17);
    config.audits_enabled = true;
    config.audit_interval = SimDuration::from_secs(3);
    config.duration = SimDuration::from_secs(20);
    let outcome = run_scenario(config);
    assert_eq!(
        outcome.expelled_count, 0,
        "audits of honest nodes must never expel them"
    );
}

#[test]
fn cover_up_without_audits_lets_colluders_linger() {
    // With cover-ups and no audits, at least some colluders stay undetected —
    // the motivation for the a-posteriori procedures.
    let outcome = run_scenario(colluding_scenario(21, false));
    let undetected = outcome
        .finals
        .outcomes
        .iter()
        .filter(|n| n.is_freerider && !n.expelled && n.score.map(|s| s >= -9.75).unwrap_or(true))
        .count();
    assert!(
        undetected > 0,
        "without audits, cover-ups should shield at least one colluder"
    );
}
